//! The bench regression gate: diff fresh `BENCH_*.json` artifacts against
//! a committed baseline, with noise-aware thresholds and a ratchet.
//!
//! The sweeps (`online_sweep`, `scenario_sweep`, `observe_pipeline`)
//! already measure the things the ROADMAP cares about — warm-start
//! speedup, batched-LP panel speedup, pipeline throughput, determinism
//! digests — but until now nothing *compared* a fresh run against the
//! last accepted one, so a perf regression only surfaced when a human
//! read the artifact. The gate closes that loop:
//!
//! * a **baseline** is a flat JSON object mapping
//!   `FILE:json.path` → scalar, committed under `baselines/`;
//! * [`run`] re-extracts the tracked metrics from the current artifacts
//!   and compares each against its baseline under the metric's
//!   [`Direction`] and relative tolerance (the noise allowance — wall
//!   clocks get a loose one, machine-independent ratios a tight one,
//!   determinism digests none);
//! * in [`GateMode::Update`] the baseline is **ratcheted**: improvements
//!   tighten it (a higher-is-better metric only ever moves up), equality
//!   metrics follow the current value, and new metrics are adopted —
//!   regressions never loosen a baseline silently;
//! * the result is a [`GateReport`] (JSON-serializable for the CI
//!   artifact) whose [`GateReport::failed`] drives the exit code of the
//!   `arrow-bench-gate` binary.
//!
//! Metric *paths* support `[*]` wildcards over arrays
//! (`panel[*].speedup`), so the spec list stays stable as sweeps add
//! topologies.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::{self, Json};

/// How a metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (speedups, throughput). Regression = current
    /// below `baseline * (1 - tolerance)`.
    HigherIsBetter,
    /// Smaller is better (wall clocks). Regression = current above
    /// `baseline * (1 + tolerance)`.
    LowerIsBetter,
    /// Exact equality (digests, boolean invariants). Any difference is a
    /// regression; tolerance is ignored.
    Equal,
}

impl Direction {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher",
            Direction::LowerIsBetter => "lower",
            Direction::Equal => "equal",
        }
    }
}

/// One tracked metric family: a file, a path pattern (with optional `[*]`
/// wildcards), a direction, and a relative noise tolerance.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Artifact file name, relative to the artifact directory.
    pub file: &'static str,
    /// Dotted path pattern into the artifact (e.g. `panel[*].speedup`).
    pub path: &'static str,
    /// How to judge baseline vs current.
    pub direction: Direction,
    /// Allowed relative slack before a difference counts as a regression
    /// (0.25 = fail only beyond 25% worse than baseline).
    pub tolerance: f64,
}

/// The default tracked-metric set for this repo's three bench artifacts.
///
/// Tolerances follow the noise profile: machine-independent *ratios*
/// (warm-vs-cold, batched-vs-sequential) get 0.35; raw wall clocks and
/// throughput numbers depend on the machine running the sweep, so they
/// only trip on near-order-of-magnitude collapses (0.75 relative for
/// throughput, 2.0 for wall clocks); determinism digests and boolean
/// invariants get exact equality — any drift is a regression.
pub fn default_specs() -> Vec<MetricSpec> {
    use Direction::*;
    let spec = |file, path, direction, tolerance| MetricSpec { file, path, direction, tolerance };
    vec![
        // online_sweep: the warm-start speedup and its correctness bits.
        spec("BENCH_online.json", "speedup", HigherIsBetter, 0.35),
        spec("BENCH_online.json", "objectives_match", Equal, 0.0),
        spec("BENCH_online.json", "winning_identical", Equal, 0.0),
        spec("BENCH_online.json", "warm_wall_seconds", LowerIsBetter, 2.0),
        // scenario_sweep → BENCH_batch.json: the batched-LP numbers.
        spec("BENCH_batch.json", "panel[*].speedup", HigherIsBetter, 0.35),
        spec("BENCH_batch.json", "panel[*].bitwise_identical", Equal, 0.0),
        spec("BENCH_batch.json", "pipeline[*].speedup", HigherIsBetter, 0.35),
        spec("BENCH_batch.json", "pipeline[*].digests_equal", Equal, 0.0),
        spec("BENCH_batch.json", "pipeline[*].ticket_set_digest", Equal, 0.0),
        spec("BENCH_batch.json", "pipeline[*].scenarios", Equal, 0.0),
        // scenario_sweep → BENCH_scenarios.json: determinism + throughput.
        spec("BENCH_scenarios.json", "topologies[*].ticket_set_digest", Equal, 0.0),
        spec("BENCH_scenarios.json", "topologies[*].universe_digest", Equal, 0.0),
        spec("BENCH_scenarios.json", "topologies[*].tickets_kept", Equal, 0.0),
        spec(
            "BENCH_scenarios.json",
            "topologies[*].generation_scenarios_per_sec",
            HigherIsBetter,
            0.75,
        ),
        // serve_soak → BENCH_serve.json: the controller daemon under chaos.
        // Ratios are machine-independent; the fallback rate is a ceiling
        // (every chaos burst forces exactly one fallback, so growth means
        // ordinary epochs started missing the deadline too).
        spec("BENCH_serve.json", "warm_hit_ratio", HigherIsBetter, 0.05),
        spec("BENCH_serve.json", "fallback_rate", LowerIsBetter, 1.0),
        spec("BENCH_serve.json", "epochs_per_sec", HigherIsBetter, 0.75),
        spec("BENCH_serve.json", "p99_epoch_seconds", LowerIsBetter, 2.0),
        spec("BENCH_serve.json", "incidents_complete", Equal, 0.0),
    ]
}

/// Check (read-only) or update (ratchet the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Compare only; the baseline file is not written.
    Check,
    /// Compare, then write the ratcheted baseline back.
    Update,
}

/// Verdict for one concrete metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricStatus {
    /// Within tolerance of the baseline (or an exact match).
    Ok,
    /// Better than baseline beyond noise; `Update` ratchets to it.
    Improved,
    /// Worse than baseline beyond tolerance — fails the gate.
    Regressed,
    /// Present in the artifact but not in the baseline (adopted on
    /// `Update`; informational on `Check`).
    New,
    /// Present in the baseline but missing from the artifact — fails the
    /// gate (a silently vanished metric is a regression in coverage).
    Missing,
}

impl MetricStatus {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MetricStatus::Ok => "ok",
            MetricStatus::Improved => "improved",
            MetricStatus::Regressed => "REGRESSED",
            MetricStatus::New => "new",
            MetricStatus::Missing => "MISSING",
        }
    }
}

/// One row of the gate report.
#[derive(Debug, Clone)]
pub struct GateEntry {
    /// `FILE:concrete.path` key, the baseline's key space.
    pub key: String,
    /// Judgement direction.
    pub direction: Direction,
    /// Tolerance applied.
    pub tolerance: f64,
    /// Baseline value, if one existed.
    pub baseline: Option<Json>,
    /// Current value, if present in the artifact.
    pub current: Option<Json>,
    /// Relative change for numeric metrics (`current/baseline - 1`).
    pub rel_change: Option<f64>,
    /// Verdict.
    pub status: MetricStatus,
}

/// The full gate outcome.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// One entry per concrete metric, in key order.
    pub entries: Vec<GateEntry>,
    /// Artifact files that could not be read or parsed.
    pub file_errors: Vec<String>,
}

impl GateReport {
    /// True when any metric regressed or went missing, or any artifact
    /// failed to load.
    pub fn failed(&self) -> bool {
        !self.file_errors.is_empty()
            || self
                .entries
                .iter()
                .any(|e| matches!(e.status, MetricStatus::Regressed | MetricStatus::Missing))
    }

    /// Counts by status: `(ok, improved, regressed, new, missing)`.
    pub fn tally(&self) -> (usize, usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0, 0);
        for e in &self.entries {
            match e.status {
                MetricStatus::Ok => t.0 += 1,
                MetricStatus::Improved => t.1 += 1,
                MetricStatus::Regressed => t.2 += 1,
                MetricStatus::New => t.3 += 1,
                MetricStatus::Missing => t.4 += 1,
            }
        }
        t
    }

    /// Serializes the report as pretty JSON (the CI artifact).
    pub fn to_json(&self) -> String {
        let (ok, improved, regressed, new, missing) = self.tally();
        let mut out = format!(
            "{{\n  \"failed\": {},\n  \"ok\": {ok},\n  \"improved\": {improved},\n  \
             \"regressed\": {regressed},\n  \"new\": {new},\n  \"missing\": {missing},\n  \
             \"file_errors\": [",
            self.failed()
        );
        for (i, err) in self.file_errors.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", crate::metrics::json_escape(err)));
        }
        out.push_str("],\n  \"metrics\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"key\": \"{}\", \"status\": \"{}\", \"direction\": \"{}\", \
                 \"tolerance\": {}, \"baseline\": {}, \"current\": {}, \"rel_change\": {}}}{}\n",
                crate::metrics::json_escape(&e.key),
                e.status.label(),
                e.direction.label(),
                crate::metrics::json_f64(e.tolerance),
                e.baseline.as_ref().map_or("null".to_string(), Json::to_compact),
                e.current.as_ref().map_or("null".to_string(), Json::to_compact),
                e.rel_change.map_or("null".to_string(), crate::metrics::json_f64),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A compact human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for err in &self.file_errors {
            out.push_str(&format!("!! {err}\n"));
        }
        for e in &self.entries {
            let change = e.rel_change.map_or(String::new(), |r| {
                format!(" ({}{:.1}%)", if r >= 0.0 { "+" } else { "" }, 100.0 * r)
            });
            out.push_str(&format!(
                "{:<9} {:<60} baseline {} -> current {}{}\n",
                e.status.label(),
                e.key,
                e.baseline.as_ref().map_or("-".to_string(), Json::to_compact),
                e.current.as_ref().map_or("-".to_string(), Json::to_compact),
                change
            ));
        }
        let (ok, improved, regressed, new, missing) = self.tally();
        out.push_str(&format!(
            "gate: {ok} ok, {improved} improved, {regressed} regressed, {new} new, \
             {missing} missing -> {}\n",
            if self.failed() { "FAIL" } else { "PASS" }
        ));
        out
    }
}

/// Why the gate itself (not a metric) failed.
#[derive(Debug)]
pub enum GateError {
    /// The baseline file exists but could not be read or parsed.
    BadBaseline(String),
    /// The ratcheted baseline could not be written (`Update` mode).
    WriteFailed(String),
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::BadBaseline(e) => write!(f, "baseline unusable: {e}"),
            GateError::WriteFailed(e) => write!(f, "could not write baseline: {e}"),
        }
    }
}

impl std::error::Error for GateError {}

/// Expands one path pattern against a document: every `[*]` fans out over
/// the array at that point. Returns `(concrete path, value)` pairs.
fn resolve<'a>(doc: &'a Json, pattern: &str) -> Vec<(String, &'a Json)> {
    let mut frontier: Vec<(String, &Json)> = vec![(String::new(), doc)];
    for segment in pattern.split('.') {
        let (member, indices) = match segment.find('[') {
            Some(b) => (&segment[..b], &segment[b..]),
            None => (segment, ""),
        };
        if !member.is_empty() {
            frontier = frontier
                .into_iter()
                .filter_map(|(p, v)| {
                    v.get(member).map(|child| {
                        (
                            if p.is_empty() { member.to_string() } else { format!("{p}.{member}") },
                            child,
                        )
                    })
                })
                .collect();
        }
        // Apply each `[...]` selector in order: `[*]` fans out, `[k]` indexes.
        for idx in indices.split('[').filter(|s| !s.is_empty()) {
            let idx = idx.trim_end_matches(']');
            if idx == "*" {
                frontier = frontier
                    .into_iter()
                    .flat_map(|(p, v)| {
                        v.as_arr()
                            .unwrap_or(&[])
                            .iter()
                            .enumerate()
                            .map(move |(i, child)| (format!("{p}[{i}]"), child))
                            .collect::<Vec<_>>()
                    })
                    .collect();
            } else if let Ok(i) = idx.parse::<usize>() {
                frontier = frontier
                    .into_iter()
                    .filter_map(|(p, v)| v.at(i).map(|child| (format!("{p}[{i}]"), child)))
                    .collect();
            } else {
                return Vec::new();
            }
        }
    }
    frontier
}

/// Judges `current` against `baseline` under `direction`/`tolerance`.
fn judge(
    baseline: &Json,
    current: &Json,
    direction: Direction,
    tolerance: f64,
) -> (MetricStatus, Option<f64>) {
    match direction {
        Direction::Equal => {
            let status =
                if baseline == current { MetricStatus::Ok } else { MetricStatus::Regressed };
            (status, None)
        }
        Direction::HigherIsBetter | Direction::LowerIsBetter => {
            let (Some(b), Some(c)) = (baseline.as_f64(), current.as_f64()) else {
                // Type drift (number became a string, …) is a regression.
                return (MetricStatus::Regressed, None);
            };
            if !b.is_finite() || !c.is_finite() {
                return (MetricStatus::Regressed, None);
            }
            let rel = if b.abs() > 0.0 { c / b - 1.0 } else { c - b };
            let (worse, better) = match direction {
                Direction::HigherIsBetter => (rel < -tolerance, rel > 0.0),
                _ => (rel > tolerance, rel < 0.0),
            };
            let status = if worse {
                MetricStatus::Regressed
            } else if better {
                MetricStatus::Improved
            } else {
                MetricStatus::Ok
            };
            (status, Some(rel))
        }
    }
}

fn load_baseline(path: &Path) -> Result<BTreeMap<String, Json>, GateError> {
    if !path.exists() {
        return Ok(BTreeMap::new());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| GateError::BadBaseline(format!("{}: {e}", path.display())))?;
    let doc = json::parse(&text)
        .map_err(|e| GateError::BadBaseline(format!("{}: {e}", path.display())))?;
    let members = doc
        .as_obj()
        .ok_or_else(|| GateError::BadBaseline(format!("{}: not a JSON object", path.display())))?;
    Ok(members.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
}

fn write_baseline(path: &Path, baseline: &BTreeMap<String, Json>) -> Result<(), GateError> {
    let mut out = String::from("{\n");
    for (i, (k, v)) in baseline.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {}{}\n",
            crate::metrics::json_escape(k),
            v.to_compact(),
            if i + 1 < baseline.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| GateError::WriteFailed(format!("{}: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, out)
        .map_err(|e| GateError::WriteFailed(format!("{}: {e}", path.display())))
}

/// Runs the gate: extracts every concrete metric named by `specs` from
/// the artifacts in `artifact_dir`, compares against the baseline at
/// `baseline_path`, and (in [`GateMode::Update`]) writes the ratcheted
/// baseline back.
pub fn run(
    artifact_dir: &Path,
    baseline_path: &Path,
    specs: &[MetricSpec],
    mode: GateMode,
) -> Result<GateReport, GateError> {
    let mut baseline = load_baseline(baseline_path)?;
    let mut report = GateReport::default();
    let mut seen_keys: Vec<String> = Vec::new();

    // Parse each artifact once.
    let mut docs: BTreeMap<&str, Option<Json>> = BTreeMap::new();
    for spec in specs {
        if docs.contains_key(spec.file) {
            continue;
        }
        let path = artifact_dir.join(spec.file);
        let doc = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    report.file_errors.push(format!("{}: {e}", spec.file));
                    None
                }
            },
            Err(e) => {
                report.file_errors.push(format!("{}: {e}", spec.file));
                None
            }
        };
        docs.insert(spec.file, doc);
    }

    for spec in specs {
        let Some(Some(doc)) = docs.get(spec.file) else { continue };
        let resolved = resolve(doc, spec.path);
        // Baseline keys this spec owns (for Missing detection): anything
        // under the same file whose path matches the pattern with `[*]`
        // treated as any index.
        let matcher = PatternMatcher::new(spec.file, spec.path);
        let mut current_keys: Vec<String> = Vec::new();
        for (concrete, value) in resolved {
            let key = format!("{}:{}", spec.file, concrete);
            current_keys.push(key.clone());
            seen_keys.push(key.clone());
            let entry = match baseline.get(&key) {
                Some(base) => {
                    let (status, rel_change) = judge(base, value, spec.direction, spec.tolerance);
                    GateEntry {
                        key,
                        direction: spec.direction,
                        tolerance: spec.tolerance,
                        baseline: Some(base.clone()),
                        current: Some(value.clone()),
                        rel_change,
                        status,
                    }
                }
                None => GateEntry {
                    key,
                    direction: spec.direction,
                    tolerance: spec.tolerance,
                    baseline: None,
                    current: Some(value.clone()),
                    rel_change: None,
                    status: MetricStatus::New,
                },
            };
            report.entries.push(entry);
        }
        for key in baseline.keys() {
            if matcher.matches(key) && !current_keys.contains(key) {
                report.entries.push(GateEntry {
                    key: key.clone(),
                    direction: spec.direction,
                    tolerance: spec.tolerance,
                    baseline: baseline.get(key).cloned(),
                    current: None,
                    rel_change: None,
                    status: MetricStatus::Missing,
                });
            }
        }
    }
    report.entries.sort_by(|a, b| a.key.cmp(&b.key));

    if mode == GateMode::Update {
        for entry in &report.entries {
            let Some(current) = &entry.current else { continue };
            let ratcheted = match (entry.status, entry.direction, &entry.baseline) {
                // Adopt new metrics and follow equality metrics.
                (MetricStatus::New, _, _) | (_, Direction::Equal, _) => current.clone(),
                // Ratchet: only ever tighten toward the better value.
                (MetricStatus::Improved, _, _) => current.clone(),
                (_, _, Some(base)) => base.clone(),
                (_, _, None) => current.clone(),
            };
            baseline.insert(entry.key.clone(), ratcheted);
        }
        write_baseline(baseline_path, &baseline)?;
    }
    Ok(report)
}

/// Matches baseline keys (`FILE:a.b[3].c`) against a spec pattern
/// (`FILE:a.b[*].c`), where `[*]` stands for any single index.
struct PatternMatcher {
    prefix_parts: Vec<String>,
}

impl PatternMatcher {
    fn new(file: &str, pattern: &str) -> PatternMatcher {
        PatternMatcher {
            prefix_parts: format!("{file}:{pattern}").split("[*]").map(String::from).collect(),
        }
    }

    fn matches(&self, key: &str) -> bool {
        let mut rest = key;
        for (i, part) in self.prefix_parts.iter().enumerate() {
            if i == 0 {
                match rest.strip_prefix(part.as_str()) {
                    Some(r) => rest = r,
                    None => return false,
                }
                continue;
            }
            // Between parts sits a concrete `[idx]`.
            let Some(after_bracket) = rest.strip_prefix('[') else { return false };
            let Some(close) = after_bracket.find(']') else { return false };
            if !after_bracket[..close].bytes().all(|b| b.is_ascii_digit()) {
                return false;
            }
            rest = &after_bracket[close + 1..];
            match rest.strip_prefix(part.as_str()) {
                Some(r) => rest = r,
                None => return false,
            }
        }
        rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("arrow_gate_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn specs() -> Vec<MetricSpec> {
        vec![
            MetricSpec {
                file: "BENCH_fake.json",
                path: "panel[*].speedup",
                direction: Direction::HigherIsBetter,
                tolerance: 0.25,
            },
            MetricSpec {
                file: "BENCH_fake.json",
                path: "digest",
                direction: Direction::Equal,
                tolerance: 0.0,
            },
        ]
    }

    fn write_artifact(dir: &Path, speedups: &[f64], digest: &str) {
        let panel: Vec<String> = speedups.iter().map(|s| format!("{{\"speedup\": {s}}}")).collect();
        std::fs::write(
            dir.join("BENCH_fake.json"),
            format!("{{\"panel\": [{}], \"digest\": \"{digest}\"}}", panel.join(", ")),
        )
        .expect("write artifact");
    }

    #[test]
    fn fresh_artifacts_pass_after_update_then_check() {
        let dir = temp_dir("pass");
        let baseline = dir.join("baseline.json");
        write_artifact(&dir, &[3.5, 3.2], "abc123");
        // First --update creates the baseline from scratch.
        let report = run(&dir, &baseline, &specs(), GateMode::Update).expect("update succeeds");
        assert!(!report.failed(), "new metrics are not failures:\n{}", report.to_table());
        assert!(baseline.exists());
        // A fresh identical run passes --check.
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check runs");
        assert!(!report.failed(), "{}", report.to_table());
        // Small noise within tolerance also passes.
        write_artifact(&dir, &[3.4, 3.0], "abc123");
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check runs");
        assert!(!report.failed(), "{}", report.to_table());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        let dir = temp_dir("regress");
        let baseline = dir.join("baseline.json");
        write_artifact(&dir, &[3.5, 3.2], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("seed baseline");
        // A 40% speedup collapse is far beyond the 25% tolerance.
        write_artifact(&dir, &[2.0, 3.2], "abc123");
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check runs");
        assert!(report.failed(), "regressed artifact must fail:\n{}", report.to_table());
        let regressed: Vec<&GateEntry> =
            report.entries.iter().filter(|e| e.status == MetricStatus::Regressed).collect();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "BENCH_fake.json:panel[0].speedup");
        assert!(regressed[0].rel_change.is_some_and(|r| r < -0.25));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_drift_fails_the_gate() {
        let dir = temp_dir("digest");
        let baseline = dir.join("baseline.json");
        write_artifact(&dir, &[3.5], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("seed baseline");
        write_artifact(&dir, &[3.5], "ffff00");
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check runs");
        assert!(report.failed());
        assert!(report
            .entries
            .iter()
            .any(|e| e.key == "BENCH_fake.json:digest" && e.status == MetricStatus::Regressed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratchet_tightens_on_improvement_and_holds_on_noise() {
        let dir = temp_dir("ratchet");
        let baseline = dir.join("baseline.json");
        write_artifact(&dir, &[3.0], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("seed baseline");
        // Improvement ratchets the baseline up …
        write_artifact(&dir, &[4.0], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("ratchet");
        let base = load_baseline(&baseline).expect("readable");
        assert_eq!(base.get("BENCH_fake.json:panel[0].speedup").and_then(Json::as_f64), Some(4.0));
        // … and a within-noise dip on a later --update does NOT loosen it.
        write_artifact(&dir, &[3.6], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("hold");
        let base = load_baseline(&baseline).expect("readable");
        assert_eq!(
            base.get("BENCH_fake.json:panel[0].speedup").and_then(Json::as_f64),
            Some(4.0),
            "ratchet must never loosen"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vanished_metric_and_missing_file_fail() {
        let dir = temp_dir("missing");
        let baseline = dir.join("baseline.json");
        write_artifact(&dir, &[3.0, 2.8], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("seed baseline");
        // The second panel lane vanished.
        write_artifact(&dir, &[3.0], "abc123");
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check runs");
        assert!(report.failed());
        assert!(report
            .entries
            .iter()
            .any(|e| e.key == "BENCH_fake.json:panel[1].speedup"
                && e.status == MetricStatus::Missing));
        // A missing artifact file is a gate failure, not a silent skip.
        std::fs::remove_file(dir.join("BENCH_fake.json")).expect("remove artifact");
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check runs");
        assert!(report.failed());
        assert_eq!(report.file_errors.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let dir = temp_dir("json");
        let baseline = dir.join("baseline.json");
        write_artifact(&dir, &[3.0], "abc123");
        run(&dir, &baseline, &specs(), GateMode::Update).expect("seed");
        write_artifact(&dir, &[1.0], "abc123");
        let report = run(&dir, &baseline, &specs(), GateMode::Check).expect("check");
        let doc = json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(doc.get("failed").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("regressed").and_then(Json::as_u64), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wildcard_matcher_is_exact_about_shape() {
        let m = PatternMatcher::new("F.json", "panel[*].speedup");
        assert!(m.matches("F.json:panel[0].speedup"));
        assert!(m.matches("F.json:panel[12].speedup"));
        assert!(!m.matches("F.json:panel[x].speedup"));
        assert!(!m.matches("F.json:panel[0].speedup.extra"));
        assert!(!m.matches("G.json:panel[0].speedup"));
        let plain = PatternMatcher::new("F.json", "speedup");
        assert!(plain.matches("F.json:speedup"));
        assert!(!plain.matches("F.json:speedup2"));
    }
}
