//! A minimal JSON reader for the telemetry plane.
//!
//! The workspace bans external dependencies, and two consumers need to
//! *read* JSON the repo itself wrote: [`crate::analyze`] re-parses
//! `trace.jsonl` records and the bench gate ([`crate::gate`]) diffs
//! `BENCH_*.json` artifacts against committed baselines. This is a small
//! recursive-descent parser covering exactly the JSON those writers emit
//! (objects, arrays, strings with the escapes [`crate::metrics`] produces,
//! numbers, booleans, null) — not a general-purpose library: no
//! streaming, no number-precision preservation beyond `f64`, no
//! serde-style typed decoding.
//!
//! Parsing never panics; malformed input returns a [`JsonError`] carrying
//! the byte offset of the problem.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved as written; lookups are linear
    /// (telemetry objects are small).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index, if this is an array.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A one-line human label for the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serializes the value back to compact JSON (numbers via `f64`
    /// shortest-round-trip formatting, non-finite numbers as `null`).
    pub fn to_compact(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => crate::metrics::json_f64(*n),
            Json::Str(s) => format!("\"{}\"", crate::metrics::json_escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::to_compact).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(members) => {
                let inner: Vec<String> = members
                    .iter()
                    .map(|(k, v)| {
                        format!("\"{}\":{}", crate::metrics::json_escape(k), v.to_compact())
                    })
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Why parsing failed, with the byte offset of the offending input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring the whole input to be consumed
/// (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Nesting depth cap: telemetry documents are a handful of levels deep;
/// the cap keeps adversarial input from exhausting the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            return Err(self.err("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return Err(self.err("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8; step by char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..end]) {
                        out.push_str(s);
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Flattens a JSON document into `path → scalar` pairs, the shape the
/// bench gate diffs. Paths use dots for object members and `[i]` for
/// array indices (e.g. `panel[0].speedup`); only scalar leaves (numbers,
/// strings, bools) are emitted. `BTreeMap` keeps the output ordered.
pub fn flatten(doc: &Json) -> BTreeMap<String, Json> {
    let mut out = BTreeMap::new();
    flatten_into(doc, String::new(), &mut out);
    out
}

fn flatten_into(v: &Json, prefix: String, out: &mut BTreeMap<String, Json>) {
    match v {
        Json::Obj(members) => {
            for (k, child) in members {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten_into(child, path, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten_into(child, format!("{prefix}[{i}]"), out);
            }
        }
        Json::Null => {}
        scalar => {
            out.insert(prefix, scalar.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = parse(r#"{"a": 1, "b": -2.5e2, "c": "x\ny", "d": [true, false, null], "e": {}}"#)
            .expect("valid json");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(-250.0));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(doc.get("d").and_then(|d| d.at(0)).and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("d").and_then(|d| d.at(2)), Some(&Json::Null));
        assert_eq!(doc.get("e").and_then(Json::as_obj).map(<[_]>::len), Some(0));
    }

    #[test]
    fn roundtrips_own_writers() {
        // The metrics snapshot writer is one of the two producers this
        // parser exists for; its output must parse cleanly.
        crate::metrics::counter("test.json.roundtrip").inc();
        let json = crate::metrics::snapshot().to_json();
        let doc = parse(&json).expect("snapshot JSON parses");
        assert!(doc.get("counters").is_some());
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated", "{]}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Deep nesting hits the depth cap instead of the stack.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_and_escapes_resolve() {
        let doc = parse(r#"{"s": "π A\t"}"#).expect("valid");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("π A\t"));
    }

    #[test]
    fn flatten_emits_scalar_leaves_with_paths() {
        let doc = parse(r#"{"a": {"b": [ {"c": 1}, {"c": "two"} ]}, "ok": true}"#).expect("valid");
        let flat = flatten(&doc);
        assert_eq!(flat.get("a.b[0].c"), Some(&Json::Num(1.0)));
        assert_eq!(flat.get("a.b[1].c"), Some(&Json::Str("two".to_string())));
        assert_eq!(flat.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(flat.len(), 3);
    }

    #[test]
    fn compact_serialization_reparses_identically() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null}}"#;
        let doc = parse(src).expect("valid");
        let again = parse(&doc.to_compact()).expect("re-parses");
        assert_eq!(doc, again);
    }
}
