//! A zero-dependency telemetry HTTP listener: `/metrics`,
//! `/snapshot.json`, `/healthz`.
//!
//! ARROW's online stage is a long-lived epoch loop (ROADMAP item 3), and a
//! long-lived process needs its telemetry *served*, not dumped at exit.
//! This module is a deliberately small, GET-only HTTP/1.1 listener
//! hand-rolled over [`std::net::TcpListener`] — no async runtime, no
//! hyper, in keeping with the workspace's no-external-deps rule. Any
//! binary can call [`spawn`] to serve the process-global metrics registry:
//!
//! * `GET /metrics` — Prometheus text exposition
//!   ([`crate::metrics::Snapshot::to_prometheus`]);
//! * `GET /snapshot.json` — the JSON snapshot
//!   ([`crate::metrics::Snapshot::to_json`]);
//! * `GET /healthz` — `ok`, for liveness probes;
//! * `GET /readyz` — readiness: `503` until the serving process marks
//!   itself ready via [`set_ready`] (the daemon does so after its first
//!   successful plan), `200 ready` after.
//!
//! Liveness and readiness are deliberately distinct: `/healthz` answers
//! "is the process up" and is `200` from the moment the listener binds,
//! while `/readyz` answers "can this controller serve a plan" and stays
//! `503` through offline ticket generation and the first epoch. The flag
//! is process-global (one controller per process), so orchestrators can
//! point both probes at the same exporter.
//!
//! Anything else is `404`; non-GET methods are `405`. Requests are served
//! sequentially on one background thread (scrapes are rare and the
//! snapshot is cheap); each connection gets a short read timeout so a
//! stalled client cannot wedge the exporter. [`ExportHandle::shutdown`]
//! stops the thread deterministically; dropping the handle does the same.
//!
//! Deliberately omitted: TLS, authentication, POST/pushgateway flows,
//! HTTP keep-alive, and request routing beyond the three fixed paths.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::metrics;

/// Per-connection socket timeout: a scrape that cannot send its request
/// line (or drain the response) within this window is dropped.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Maximum request head we are willing to buffer before answering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Process-global readiness flag behind `/readyz`. False at startup;
/// flipped by [`set_ready`] once the controller has produced its first
/// successful plan (and back to false if it wants to shed load).
static READY: AtomicBool = AtomicBool::new(false);

/// Sets the process-global readiness flag served by `/readyz`.
pub fn set_ready(ready: bool) {
    READY.store(ready, Ordering::Release);
}

/// The current readiness flag, exactly as `/readyz` sees it.
pub fn ready() -> bool {
    READY.load(Ordering::Acquire)
}

struct ExportMetrics {
    requests: metrics::Counter,
    errors: metrics::Counter,
}

fn export_metrics() -> &'static ExportMetrics {
    static METRICS: OnceLock<ExportMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ExportMetrics {
        requests: metrics::counter("obs.export.requests"),
        errors: metrics::counter("obs.export.errors"),
    })
}

/// A running exporter. Keep it alive for as long as the endpoints should
/// be served; [`ExportHandle::shutdown`] (or drop) stops the listener
/// thread and joins it.
#[derive(Debug)]
pub struct ExportHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ExportHandle {
    /// The address actually bound (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            // The accept loop may be blocked; poke it with one throwaway
            // connection so it observes the stop flag promptly.
            let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
            let _ = thread.join();
        }
    }
}

impl Drop for ExportHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// the metrics endpoints from a background thread until the returned
/// handle is shut down or dropped.
pub fn spawn(addr: impl ToSocketAddrs) -> std::io::Result<ExportHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let thread = std::thread::Builder::new()
        .name("arrow-obs-export".to_string())
        .spawn(move || serve(listener, &stop_flag))?;
    crate::event!("obs.export.listening", "addr" => bound.to_string());
    Ok(ExportHandle { addr: bound, stop, thread: Some(thread) })
}

fn serve(listener: TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match conn {
            Ok(stream) => {
                if handle_connection(stream).is_err() {
                    export_metrics().errors.inc();
                }
            }
            Err(_) => export_metrics().errors.inc(),
        }
    }
}

/// Reads the request head (up to the blank line or [`MAX_REQUEST_BYTES`])
/// and writes exactly one response.
fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let (status, content_type, body) = respond(&head);
    export_metrics().requests.inc();
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

/// Routes one request head to `(status line, content type, body)`.
fn respond(head: &[u8]) -> (&'static str, &'static str, String) {
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .and_then(|l| std::str::from_utf8(l).ok())
        .unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Scrapers may append query strings (`/metrics?format=...`); route on
    // the path component only.
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return ("405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n".to_string());
    }
    match path {
        "/metrics" => (
            "200 OK",
            // The Prometheus text exposition content type (v0.0.4).
            "text/plain; version=0.0.4; charset=utf-8",
            metrics::snapshot().to_prometheus(),
        ),
        "/snapshot.json" => {
            ("200 OK", "application/json; charset=utf-8", metrics::snapshot().to_json())
        }
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/readyz" => {
            if ready() {
                ("200 OK", "text/plain; charset=utf-8", "ready\n".to_string())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "not ready: no successful plan yet\n".to_string(),
                )
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "endpoints: /metrics /snapshot.json /healthz /readyz\n".to_string(),
        ),
    }
}

/// A blocking, `curl`-equivalent GET against `addr`, returning the raw
/// HTTP response as a string. Used by sweeps and tests to exercise the
/// exporter over a real socket without shelling out.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_of(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    }

    #[test]
    fn serves_metrics_snapshot_and_health() {
        metrics::counter("test.export.hits").add(3);
        let mut handle = spawn("127.0.0.1:0").expect("bind ephemeral port");
        let addr = handle.local_addr();

        let health = http_get(addr, "/healthz").expect("GET /healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert_eq!(body_of(&health), "ok\n");

        let prom = http_get(addr, "/metrics").expect("GET /metrics");
        assert!(prom.starts_with("HTTP/1.1 200 OK"));
        assert!(prom.contains("text/plain; version=0.0.4"));
        assert!(body_of(&prom).contains("test_export_hits 3"), "{prom}");

        let snap = http_get(addr, "/snapshot.json").expect("GET /snapshot.json");
        assert!(snap.contains("application/json"));
        let doc = crate::json::parse(body_of(&snap)).expect("snapshot body is valid JSON");
        assert!(
            doc.get("counters").and_then(|c| c.get("test.export.hits")).is_some(),
            "snapshot carries the counter"
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let handle = spawn("127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        let missing = http_get(addr, "/nope").expect("GET /nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn readyz_tracks_the_readiness_flag() {
        // The flag is process-global; this is the only test that touches
        // it, so the 503 -> 200 -> 503 sequence below is race-free.
        let handle = spawn("127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();

        set_ready(false);
        let starting = http_get(addr, "/readyz").expect("GET /readyz");
        assert!(starting.starts_with("HTTP/1.1 503"), "{starting}");
        assert!(body_of(&starting).contains("not ready"), "{starting}");
        // Liveness stays green the whole time.
        let health = http_get(addr, "/healthz").expect("GET /healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");

        set_ready(true);
        assert!(ready());
        let ok = http_get(addr, "/readyz").expect("GET /readyz");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert_eq!(body_of(&ok), "ready\n");

        // Readiness can be withdrawn (load shedding / re-offline).
        set_ready(false);
        let again = http_get(addr, "/readyz").expect("GET /readyz");
        assert!(again.starts_with("HTTP/1.1 503"), "{again}");
    }

    #[test]
    fn query_strings_route_on_path_only() {
        let handle = spawn("127.0.0.1:0").expect("bind");
        let ok = http_get(handle.local_addr(), "/metrics?format=prometheus").expect("GET");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut handle = spawn("127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        handle.shutdown();
        handle.shutdown();
        // The listener is gone: a rebind on the same port must succeed.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn exporter_counts_requests() {
        let before = metrics::snapshot().counter("obs.export.requests");
        let handle = spawn("127.0.0.1:0").expect("bind");
        let _ = http_get(handle.local_addr(), "/healthz").expect("GET");
        let _ = http_get(handle.local_addr(), "/metrics").expect("GET");
        assert!(metrics::snapshot().counter("obs.export.requests") >= before + 2);
    }
}
