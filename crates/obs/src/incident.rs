//! Flight-recorder incident dumps: a post-mortem directory per bad epoch.
//!
//! A long-lived controller (ROADMAP item 3) cannot stop to let a human
//! attach a profiler when an epoch blows its deadline — by the next epoch
//! the evidence is gone. The daemon therefore runs a per-epoch
//! [`crate::trace::RingSubscriber`] capture, and when an epoch misses its
//! SLO budget or errors out it hands the ring's records to [`dump`],
//! which freezes everything an investigation needs into a timestamped
//! incident directory:
//!
//! * `incident.json` — reason, epoch index, the triggering event, free
//!   detail, and the critical-path summary;
//! * `trace.jsonl` — the captured records, one JSON object per line
//!   (the same format [`crate::trace::FileSubscriber`] writes, so the
//!   analyzer and flamegraph tooling work unchanged);
//! * `critical_path.txt` — the offending epoch's critical path, one
//!   `name  duration_ms` hop per line ([`crate::analyze::SpanTree`]);
//! * `stage_report.json` — per-stage time attribution for the capture;
//! * `metrics.json` — the full metrics-registry snapshot at dump time.
//!
//! Directory names sort chronologically (`incident-<unix_ms>-ep<N>-<reason>`)
//! and collide-proof themselves with a numeric suffix, so chaos soaks
//! that trigger several dumps in one millisecond still keep every one.
//!
//! The dump is deliberately best-effort *atomic per file*: a partially
//! written directory (disk full mid-dump) still holds whatever files
//! completed, and every failure surfaces as `io::Error` — never a panic
//! (this crate ratchets `panic-on-input-path` at zero).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::analyze::{CriticalHop, SpanTree};
use crate::metrics;
use crate::trace::Record;

/// Everything the flight recorder knows about one bad epoch.
#[derive(Debug, Clone)]
pub struct IncidentContext<'a> {
    /// Machine-readable reason slug, e.g. `deadline-miss` or `plan-error`.
    /// Sanitized into the directory name (non `[a-z0-9-]` become `-`).
    pub reason: &'a str,
    /// Epoch index (the daemon's planned-epoch counter).
    pub epoch: u64,
    /// The feed event that triggered the epoch (`tick`, `cut:3`,
    /// `chaos-burst`, ...), verbatim.
    pub trigger: &'a str,
    /// Free-form detail: the miss verdict, the plan error, etc.
    pub detail: &'a str,
    /// The epoch's captured trace records (the ring's contents).
    pub records: &'a [Record],
}

/// What [`dump`] wrote, for callers that assert on incident contents.
#[derive(Debug, Clone)]
pub struct IncidentDump {
    /// The created incident directory.
    pub dir: PathBuf,
    /// Critical path of the offending epoch (empty when the capture held
    /// no finished spans — still an incident, just a blind one).
    pub critical_path: Vec<CriticalHop>,
    /// Finished spans reconstructed from the capture.
    pub spans: usize,
}

impl IncidentDump {
    /// True when `name` appears on the dumped critical path.
    pub fn critical_path_contains(&self, name: &str) -> bool {
        self.critical_path.iter().any(|h| h.name == name)
    }
}

struct IncidentMetrics {
    dumps: metrics::Counter,
}

fn incident_metrics() -> &'static IncidentMetrics {
    static METRICS: std::sync::OnceLock<IncidentMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        metrics::describe("obs.incident.dumps", "flight-recorder incident directories written");
        IncidentMetrics { dumps: metrics::counter("obs.incident.dumps") }
    })
}

/// Milliseconds since the Unix epoch, for sortable directory names.
/// Timestamping dumps is exactly what wall clocks are for; nothing in the
/// planning path reads this.
fn unix_millis() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// Reason slugs feed directory names; keep them filesystem-safe.
fn sanitize(reason: &str) -> String {
    let cleaned: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c.to_ascii_lowercase() } else { '-' })
        .collect();
    if cleaned.is_empty() {
        "incident".to_string()
    } else {
        cleaned
    }
}

/// Picks the root span to walk the critical path from: the *last* root
/// named `epoch` if one finished (the offending epoch is the most recent
/// capture), otherwise the longest root of any name.
fn pick_root(tree: &SpanTree) -> Option<usize> {
    tree.roots
        .iter()
        .copied()
        .rfind(|&r| tree.nodes[r].name == "epoch")
        .or_else(|| tree.roots.iter().copied().max_by_key(|&r| tree.nodes[r].duration_nanos))
}

/// Writes one incident directory under `base_dir` and returns what it
/// wrote. Creates `base_dir` if needed.
pub fn dump(base_dir: &Path, ctx: &IncidentContext<'_>) -> io::Result<IncidentDump> {
    fs::create_dir_all(base_dir)?;
    let stamp = unix_millis();
    let slug = sanitize(ctx.reason);
    let mut dir = base_dir.join(format!("incident-{stamp}-ep{:04}-{slug}", ctx.epoch));
    let mut suffix = 0u32;
    while dir.exists() {
        suffix += 1;
        dir = base_dir.join(format!("incident-{stamp}-ep{:04}-{slug}-{suffix}", ctx.epoch));
    }
    fs::create_dir(&dir)?;

    // trace.jsonl — the raw capture, FileSubscriber-compatible.
    let mut jsonl = String::new();
    for record in ctx.records {
        jsonl.push_str(&record.to_json_line());
        jsonl.push('\n');
    }
    fs::write(dir.join("trace.jsonl"), &jsonl)?;

    // Analyzer products: critical path + per-stage attribution.
    let tree = SpanTree::from_records(ctx.records);
    let critical_path = pick_root(&tree).map(|r| tree.critical_path(r)).unwrap_or_default();
    let mut path_txt = String::new();
    for hop in &critical_path {
        path_txt.push_str(&format!(
            "{:<16} {:>12.3} ms\n",
            hop.name,
            hop.duration_nanos as f64 / 1e6
        ));
    }
    fs::write(dir.join("critical_path.txt"), &path_txt)?;
    fs::write(dir.join("stage_report.json"), tree.stage_report_json())?;

    // The full metrics snapshot at dump time.
    fs::write(dir.join("metrics.json"), metrics::snapshot().to_json())?;

    // incident.json — the manifest tying it all together.
    let mut manifest = String::from("{\n");
    manifest.push_str(&format!("  \"reason\": \"{}\",\n", metrics::json_escape(ctx.reason)));
    manifest.push_str(&format!("  \"epoch\": {},\n", ctx.epoch));
    manifest.push_str(&format!("  \"trigger\": \"{}\",\n", metrics::json_escape(ctx.trigger)));
    manifest.push_str(&format!("  \"detail\": \"{}\",\n", metrics::json_escape(ctx.detail)));
    manifest.push_str(&format!("  \"unix_millis\": {stamp},\n"));
    manifest.push_str(&format!("  \"captured_records\": {},\n", ctx.records.len()));
    manifest.push_str(&format!("  \"finished_spans\": {},\n", tree.nodes.len()));
    manifest.push_str("  \"critical_path\": [");
    for (i, hop) in critical_path.iter().enumerate() {
        if i > 0 {
            manifest.push_str(", ");
        }
        manifest.push_str(&format!("\"{}\"", metrics::json_escape(&hop.name)));
    }
    manifest.push_str("]\n}\n");
    fs::write(dir.join("incident.json"), &manifest)?;

    incident_metrics().dumps.inc();
    crate::event!(warn: "obs.incident.dump",
        "reason" => ctx.reason.to_string(),
        "epoch" => ctx.epoch,
        "dir" => dir.display().to_string());

    Ok(IncidentDump { dir, critical_path, spans: tree.nodes.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::trace::RecordKind;

    fn span_end(
        name: &'static str,
        span_id: u64,
        parent_id: Option<u64>,
        t_nanos: u64,
        duration_nanos: u64,
    ) -> Record {
        Record {
            kind: RecordKind::SpanEnd,
            name,
            span_id,
            parent_id,
            t_nanos,
            duration_nanos: Some(duration_nanos),
            level: crate::Level::Info,
            thread: 1,
            fields: Vec::new(),
        }
    }

    /// epoch { te.phase1 { lp.solve } te.phase2 } — the daemon's shape.
    fn epoch_capture() -> Vec<Record> {
        vec![
            span_end("lp.solve", 3, Some(2), 60, 50),
            span_end("te.phase1", 2, Some(1), 65, 60),
            span_end("te.phase2", 4, Some(1), 95, 25),
            span_end("epoch", 1, None, 100, 100),
        ]
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("arrow-incident-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dump_writes_all_artifacts() {
        let base = scratch_dir("all");
        let records = epoch_capture();
        let ctx = IncidentContext {
            reason: "deadline-miss",
            epoch: 7,
            trigger: "chaos-burst",
            detail: "epoch took 3.1s against a 2.0s budget",
            records: &records,
        };
        let dump = dump(&base, &ctx).expect("incident dump succeeds");
        assert!(dump.dir.starts_with(&base));
        for file in [
            "incident.json",
            "trace.jsonl",
            "critical_path.txt",
            "stage_report.json",
            "metrics.json",
        ] {
            let path = dump.dir.join(file);
            assert!(path.is_file(), "missing {file}");
            assert!(fs::metadata(&path).map(|m| m.len()).unwrap_or(0) > 0, "{file} is empty");
        }

        // The critical path walks epoch -> te.phase1 -> lp.solve.
        let names: Vec<&str> = dump.critical_path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["epoch", "te.phase1", "lp.solve"]);
        assert!(dump.critical_path_contains("lp.solve"));
        assert_eq!(dump.spans, 4);

        // The manifest parses and carries the context verbatim.
        let manifest = fs::read_to_string(dump.dir.join("incident.json")).expect("read manifest");
        let doc = json::parse(&manifest).expect("incident.json is valid JSON");
        assert_eq!(doc.get("reason").and_then(Json::as_str), Some("deadline-miss"));
        assert_eq!(doc.get("epoch").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("trigger").and_then(Json::as_str), Some("chaos-burst"));
        assert_eq!(doc.get("finished_spans").and_then(Json::as_u64), Some(4));

        // The dumped trace re-analyzes to the same critical path.
        let jsonl = fs::read_to_string(dump.dir.join("trace.jsonl")).expect("read trace");
        let tree = SpanTree::from_jsonl(&jsonl).expect("dumped trace parses");
        let root = tree
            .roots
            .iter()
            .copied()
            .find(|&r| tree.nodes[r].name == "epoch")
            .expect("epoch root");
        let reparsed: Vec<String> =
            tree.critical_path(root).iter().map(|h| h.name.clone()).collect();
        assert_eq!(reparsed, ["epoch", "te.phase1", "lp.solve"]);
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn dump_names_collide_proof_and_sanitized() {
        let base = scratch_dir("collide");
        let records = epoch_capture();
        let ctx = IncidentContext {
            reason: "Plan Error!",
            epoch: 1,
            trigger: "tick",
            detail: "",
            records: &records,
        };
        let a = dump(&base, &ctx).expect("first dump");
        let b = dump(&base, &ctx).expect("second dump");
        assert_ne!(a.dir, b.dir, "same-millisecond dumps must not collide");
        let name = a.dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        assert!(name.contains("plan-error-"), "reason sanitized into {name:?}");
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn empty_capture_still_dumps_blind_incident() {
        let base = scratch_dir("blind");
        let ctx = IncidentContext {
            reason: "plan-error",
            epoch: 0,
            trigger: "tick",
            detail: "offline state invalid",
            records: &[],
        };
        let dump = dump(&base, &ctx).expect("blind dump succeeds");
        assert!(dump.critical_path.is_empty());
        assert_eq!(dump.spans, 0);
        assert!(dump.dir.join("incident.json").is_file());
        let _ = fs::remove_dir_all(&base);
    }
}
