//! Epoch-deadline SLO accounting for the online control loop.
//!
//! ARROW's online stage re-plans every TE epoch (five minutes in §5), so
//! its production health is a deadline story: *did this epoch's plan land
//! inside the budget, and how much error budget is left?* This module
//! turns each epoch's wall-clock duration into that accounting:
//!
//! * counters `slo.epoch.met` / `slo.epoch.missed` — per-epoch deadline
//!   verdicts against the configured budget (default 300 s);
//! * gauges `slo.epoch.p50.seconds` / `slo.epoch.p99.seconds` — rolling
//!   latency quantiles read back from the existing `epoch.seconds`
//!   histogram (bucket resolution) and sharpened by an exact sliding
//!   window of recent epochs;
//! * gauges `slo.error_budget.burn_rate` / `slo.error_budget.remaining` —
//!   how fast the windowed miss rate is consuming the error budget implied
//!   by the objective (default 99% of epochs on time), and the fraction of
//!   the lifetime budget still unspent. A burn rate of 1.0 means misses
//!   are arriving exactly as fast as the objective tolerates; above 1.0
//!   the SLO is being burned down.
//!
//! The controller (`ArrowController::plan` / `plan_warm` in `arrow-core`)
//! calls [`record_epoch`] once per epoch; a deadline miss additionally
//! emits a `slo.deadline.miss` warn event so trace subscribers see it in
//! context. Configuration is process-global ([`configure`]) because the
//! metrics registry it feeds is too.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::metrics;

/// Epoch-deadline SLO parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Per-epoch deadline in seconds. Defaults to 300 — the five-minute TE
    /// epoch of §5.
    pub budget_seconds: f64,
    /// Fraction of epochs that must meet the deadline (the SLO objective).
    /// The error budget is `1 - objective`.
    pub objective: f64,
    /// Number of recent epochs over which the rolling quantiles and the
    /// burn rate are computed.
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { budget_seconds: 300.0, objective: 0.99, window: 128 }
    }
}

/// The verdict for one recorded epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochVerdict {
    /// The epoch's wall-clock duration, as recorded.
    pub seconds: f64,
    /// The budget it was judged against.
    pub budget_seconds: f64,
    /// Whether the epoch met the deadline (`seconds <= budget`).
    pub met: bool,
    /// Windowed error-budget burn rate after this epoch.
    pub burn_rate: f64,
}

struct SloMetrics {
    met: metrics::Counter,
    missed: metrics::Counter,
    budget: metrics::Gauge,
    p50: metrics::Gauge,
    p99: metrics::Gauge,
    burn_rate: metrics::Gauge,
    remaining: metrics::Gauge,
}

struct SloState {
    config: SloConfig,
    /// Recent epoch durations, newest last, at most `config.window` long.
    recent: VecDeque<f64>,
    /// Deadline misses within `recent`.
    recent_missed: usize,
    /// Lifetime totals (also available as counters; kept here so the
    /// remaining-budget gauge needs no registry read-back).
    total: u64,
    missed: u64,
}

struct Engine {
    metrics: SloMetrics,
    state: Mutex<SloState>,
}

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine {
        metrics: SloMetrics {
            met: metrics::counter("slo.epoch.met"),
            missed: metrics::counter("slo.epoch.missed"),
            budget: metrics::gauge("slo.budget.seconds"),
            p50: metrics::gauge("slo.epoch.p50.seconds"),
            p99: metrics::gauge("slo.epoch.p99.seconds"),
            burn_rate: metrics::gauge("slo.error_budget.burn_rate"),
            remaining: metrics::gauge("slo.error_budget.remaining"),
        },
        state: Mutex::new(SloState {
            config: SloConfig::default(),
            recent: VecDeque::new(),
            recent_missed: 0,
            total: 0,
            missed: 0,
        }),
    })
}

fn lock_state() -> std::sync::MutexGuard<'static, SloState> {
    // A panic while holding the lock leaves consistent (if stale) state;
    // recover rather than poison every later epoch.
    engine().state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Replaces the process-global SLO configuration and resets the rolling
/// window (lifetime counters are kept — they are registry counters and
/// follow [`metrics::reset`] semantics instead).
pub fn configure(config: SloConfig) {
    let mut state = lock_state();
    state.config = sanitized(config);
    state.recent.clear();
    state.recent_missed = 0;
    engine().metrics.budget.set(state.config.budget_seconds);
}

/// The currently configured SLO parameters.
pub fn config() -> SloConfig {
    lock_state().config.clone()
}

/// Clamps pathological configurations instead of erroring: the SLO engine
/// must keep accounting with whatever it is given.
fn sanitized(mut config: SloConfig) -> SloConfig {
    if !config.budget_seconds.is_finite() || config.budget_seconds <= 0.0 {
        config.budget_seconds = SloConfig::default().budget_seconds;
    }
    if !config.objective.is_finite() {
        config.objective = SloConfig::default().objective;
    }
    config.objective = config.objective.clamp(0.0, 1.0 - 1e-9);
    config.window = config.window.max(1);
    config
}

/// Exact quantile of a small sample (window-sized; sorts a copy).
fn exact_quantile(samples: &VecDeque<f64>, q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.iter().copied().collect();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Records one epoch's wall-clock duration against the configured budget,
/// updating every SLO metric, and returns the verdict. Called by the
/// controller once per `plan`/`plan_warm` epoch.
pub fn record_epoch(seconds: f64) -> EpochVerdict {
    let engine = engine();
    let mut state = lock_state();
    let budget = state.config.budget_seconds;
    // A non-finite duration can only come from a clock bug; count it as a
    // miss so it is visible rather than silently dropped.
    let met = seconds.is_finite() && seconds <= budget;

    state.total += 1;
    if met {
        engine.metrics.met.inc();
    } else {
        state.missed += 1;
        engine.metrics.missed.inc();
    }
    if state.recent.len() == state.config.window {
        if let Some(evicted) = state.recent.pop_front() {
            if !(evicted.is_finite() && evicted <= budget) {
                state.recent_missed = state.recent_missed.saturating_sub(1);
            }
        }
    }
    state.recent.push_back(seconds);
    if !met {
        state.recent_missed += 1;
    }

    // Rolling quantiles: the epoch.seconds histogram gives the cumulative
    // picture at bucket resolution; the exact window sharpens it for the
    // gauges (and works even if the histogram was reset mid-run).
    let p50 = exact_quantile(&state.recent, 0.50);
    let p99 = exact_quantile(&state.recent, 0.99);

    // Error budget: the objective tolerates a miss fraction of
    // `1 - objective`. Burn rate is the windowed miss fraction in units of
    // that allowance; remaining is the unspent fraction of the lifetime
    // allowance, clamped at zero once overspent.
    let allowance = 1.0 - state.config.objective;
    let window_miss_fraction = state.recent_missed as f64 / state.recent.len() as f64;
    let burn_rate = window_miss_fraction / allowance;
    let lifetime_miss_fraction = state.missed as f64 / state.total as f64;
    let remaining = (1.0 - lifetime_miss_fraction / allowance).max(0.0);

    engine.metrics.budget.set(budget);
    engine.metrics.p50.set(p50);
    engine.metrics.p99.set(p99);
    engine.metrics.burn_rate.set(burn_rate);
    engine.metrics.remaining.set(remaining);
    drop(state);

    if !met {
        crate::event!(
            warn: "slo.deadline.miss",
            "seconds" => seconds,
            "budget_seconds" => budget,
            "burn_rate" => burn_rate,
        );
    }
    EpochVerdict { seconds, budget_seconds: budget, met, burn_rate }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine is process-global; tests that reconfigure it must not
    /// interleave.
    fn engine_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn verdicts_split_on_the_budget() {
        let _guard = engine_lock();
        configure(SloConfig { budget_seconds: 1.0, ..Default::default() });
        let before = metrics::snapshot();
        assert!(record_epoch(0.5).met);
        assert!(!record_epoch(2.0).met);
        assert!(record_epoch(1.0).met, "exactly on budget meets the deadline");
        let after = metrics::snapshot();
        assert_eq!(after.counter("slo.epoch.met") - before.counter("slo.epoch.met"), 2);
        assert_eq!(after.counter("slo.epoch.missed") - before.counter("slo.epoch.missed"), 1);
        assert_eq!(after.gauge("slo.budget.seconds"), Some(1.0));
    }

    #[test]
    fn burn_rate_scales_with_windowed_misses() {
        let _guard = engine_lock();
        configure(SloConfig { budget_seconds: 1.0, objective: 0.9, window: 10 });
        for _ in 0..9 {
            record_epoch(0.1);
        }
        // 1 miss in a full window of 10 at a 10% allowance: burn rate 1.0.
        let v = record_epoch(5.0);
        assert!(!v.met);
        assert!((v.burn_rate - 1.0).abs() < 1e-9, "burn rate {}", v.burn_rate);
        // A second miss doubles it (2/10 misses over a 0.1 allowance).
        let v = record_epoch(5.0);
        assert!((v.burn_rate - 2.0).abs() < 1e-9, "burn rate {}", v.burn_rate);
        // Misses roll out of the window as fast epochs displace them.
        for _ in 0..10 {
            record_epoch(0.1);
        }
        let snap = metrics::snapshot();
        assert_eq!(snap.gauge("slo.error_budget.burn_rate"), Some(0.0));
    }

    #[test]
    fn rolling_quantiles_track_the_window() {
        let _guard = engine_lock();
        configure(SloConfig { budget_seconds: 100.0, objective: 0.99, window: 100 });
        for i in 1..=100 {
            record_epoch(i as f64 / 100.0);
        }
        let snap = metrics::snapshot();
        let p50 = snap.gauge("slo.epoch.p50.seconds").unwrap_or(0.0);
        let p99 = snap.gauge("slo.epoch.p99.seconds").unwrap_or(0.0);
        assert!((p50 - 0.50).abs() < 1e-9, "p50 {p50}");
        assert!((p99 - 0.99).abs() < 1e-9, "p99 {p99}");
        // Slow epochs entering the window move the tail immediately.
        record_epoch(10.0);
        let p99 = metrics::snapshot().gauge("slo.epoch.p99.seconds").unwrap_or(0.0);
        assert!(p99 > 0.99, "p99 {p99} should feel the outlier");
    }

    #[test]
    fn pathological_configs_are_sanitized() {
        let _guard = engine_lock();
        configure(SloConfig { budget_seconds: f64::NAN, objective: 2.0, window: 0 });
        let cfg = config();
        assert_eq!(cfg.budget_seconds, SloConfig::default().budget_seconds);
        assert!(cfg.objective < 1.0);
        assert_eq!(cfg.window, 1);
        // Non-finite epoch durations count as misses, not silent drops.
        let before = metrics::snapshot().counter("slo.epoch.missed");
        assert!(!record_epoch(f64::NAN).met);
        assert_eq!(metrics::snapshot().counter("slo.epoch.missed"), before + 1);
        configure(SloConfig::default());
    }

    #[test]
    fn deadline_miss_emits_warn_event() {
        let _guard = engine_lock();
        let _sub_guard = crate::trace::test_subscriber_lock();
        configure(SloConfig { budget_seconds: 0.5, ..Default::default() });
        let ring = std::sync::Arc::new(crate::trace::RingSubscriber::new(16));
        crate::trace::install(ring.clone());
        record_epoch(1.0);
        crate::trace::uninstall();
        let warns: Vec<_> = ring
            .records()
            .into_iter()
            .filter(|r| r.name == "slo.deadline.miss" && r.level == crate::Level::Warn)
            .collect();
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].field("budget_seconds").and_then(crate::FieldValue::as_f64), Some(0.5));
        configure(SloConfig::default());
    }
}
