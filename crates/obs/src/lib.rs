//! # arrow-obs — structured tracing and metrics for the ARROW workspace
//!
//! ARROW's claim rests on operational timing: the online stage must pick a
//! winning LotteryTicket and re-allocate traffic within a TE epoch after a
//! fiber cut. Answering "how long did it take and why" therefore needs one
//! instrumentation layer every crate emits into and every sweep reads out
//! of, instead of per-binary `Instant::now()` bookkeeping. This crate is
//! that layer, in two halves:
//!
//! * [`metrics`] — a process-global registry of named counters, gauges, and
//!   fixed-bucket histograms backed by atomics. Always on (an update is a
//!   handful of atomic operations), snapshot on demand as JSON or
//!   Prometheus-style text exposition.
//! * [`trace`] — structured spans and events: [`span!`]/[`event!`] with a
//!   thread-local span stack, monotonic timestamps, and key-value fields,
//!   delivered to an installed [`trace::Subscriber`]. With no subscriber
//!   installed the entire path is one relaxed atomic load — fields are not
//!   even evaluated — so instrumentation is effectively free when off.
//!
//! Subscribers shipped: [`trace::FileSubscriber`] (JSONL, one record per
//! line, for run reports), [`trace::RingSubscriber`] (bounded in-memory
//! buffer, for tests and sweeps), and [`trace::FanoutSubscriber`]
//! (broadcast to several).
//!
//! On top of the two halves sits the **telemetry plane**:
//!
//! * [`export`] — a zero-dependency HTTP listener serving `/metrics`
//!   (Prometheus text), `/snapshot.json`, `/healthz`, and `/readyz`
//!   (readiness, flipped by the controller daemon) from any binary;
//! * [`incident`] — flight-recorder incident dumps: freeze a bad epoch's
//!   span tree, critical path, and metrics snapshot into a timestamped
//!   directory for post-mortems;
//! * [`slo`] — the epoch-deadline SLO engine (deadline-miss counters,
//!   rolling p50/p99, error-budget burn rate), fed by the controller once
//!   per epoch;
//! * [`analyze`] — span-tree reconstruction from trace records: per-stage
//!   self-time attribution, the critical path through an epoch, and
//!   flamegraph-compatible collapsed stacks;
//! * [`gate`] — the bench regression gate behind the `arrow-bench-gate`
//!   binary, diffing `BENCH_*.json` artifacts against a committed,
//!   ratcheted baseline;
//! * [`json`] — the minimal std-only JSON parser the above share.
//!
//! Deliberately omitted, in the spirit of the repo's synchronous CPU-bound
//! design: no async integration, no sampling, no per-record levels beyond
//! info/warn, no cross-thread span parentage (a span opened on a worker
//! thread is a root on that thread; records carry a thread id instead),
//! and no external dependencies of any kind.
//!
//! ## Quickstart
//!
//! ```
//! use arrow_obs::{event, span};
//! use std::sync::Arc;
//!
//! // Metrics are always on.
//! let solves = arrow_obs::metrics::counter("doc.solves");
//! solves.inc();
//!
//! // Traces go to an installed subscriber.
//! let ring = Arc::new(arrow_obs::trace::RingSubscriber::new(64));
//! arrow_obs::trace::install(ring.clone());
//! {
//!     let _epoch = span!("doc.epoch", "interval" => 3_usize);
//!     event!("doc.note", "detail" => "inside the span");
//! } // span closed here, duration recorded
//! arrow_obs::trace::uninstall();
//!
//! assert_eq!(ring.finished_spans("doc.epoch").len(), 1);
//! assert!(arrow_obs::metrics::snapshot().to_json().contains("doc.solves"));
//! ```

// The counting-allocator test harness (zero-allocation contract for the
// disabled tracing path) needs a `GlobalAlloc` impl, which is unsafe; the
// shipped library remains entirely safe code.
#![cfg_attr(not(test), forbid(unsafe_code))]
#![warn(missing_docs)]

pub mod analyze;
pub mod export;
pub mod gate;
pub mod incident;
pub mod json;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use analyze::{CriticalHop, SpanNode, SpanTree, StageStat};
pub use export::{http_get, ExportHandle};
pub use incident::{IncidentContext, IncidentDump};
pub use metrics::{Counter, Gauge, Histogram, Snapshot};
pub use slo::{EpochVerdict, SloConfig};
pub use trace::{
    FanoutSubscriber, FieldValue, FileSubscriber, Level, Record, RecordKind, RingSubscriber,
    SpanGuard, Subscriber,
};
