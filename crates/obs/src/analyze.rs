//! Trace analysis: span-tree reconstruction, self-time attribution,
//! critical paths, and flamegraph-compatible collapsed stacks.
//!
//! The tracing layer answers *what happened*; this module answers *where
//! the time went*. It rebuilds the span tree from finished-span records —
//! either live [`crate::trace::Record`]s out of a
//! [`crate::trace::RingSubscriber`] or a `trace.jsonl` file written by a
//! [`crate::trace::FileSubscriber`] — and computes:
//!
//! * **self time** per span: duration minus the duration of its children
//!   on the same thread (what the stage spent *itself*, not delegating);
//! * **per-stage attribution** ([`SpanTree::stage_report`]): spans
//!   aggregated by name with counts, total and self time;
//! * **the critical path** ([`SpanTree::critical_path`]): from a root
//!   span, repeatedly descend into the longest child — for ARROW's
//!   synchronous epoch loop this names the stage chain that bounds the
//!   epoch deadline (and must name the LP solve, which
//!   `examples/observe_pipeline.rs` asserts);
//! * **collapsed stacks** ([`SpanTree::collapsed_stacks`]): one
//!   `root;child;leaf <microseconds>` line per unique stack, the input
//!   format of Brendan Gregg's `flamegraph.pl` and every compatible
//!   viewer.
//!
//! Spans that never finished (no `span_end` record) are dropped — an
//! unfinished span has no duration to attribute. Cross-thread parentage
//! does not exist in this tracer (worker spans are roots on their own
//! thread), so a tree per root is exactly a tree per synchronous stage.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::trace::{Record, RecordKind};

/// One reconstructed (finished) span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Process-unique span id from the trace.
    pub span_id: u64,
    /// Parent span id, if the span was nested.
    pub parent_id: Option<u64>,
    /// Thread the span ran on.
    pub thread: u64,
    /// Start time (nanoseconds since the trace epoch).
    pub start_nanos: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_nanos: u64,
    /// Indices (into [`SpanTree::nodes`]) of this span's children, in
    /// start order.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// Duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_nanos as f64 / 1e9
    }
}

/// One aggregated row of the per-stage report.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of finished spans with that name.
    pub count: usize,
    /// Summed wall-clock nanoseconds.
    pub total_nanos: u64,
    /// Summed self-time nanoseconds (total minus time in child spans).
    pub self_nanos: u64,
}

/// One hop of a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// Span name at this hop.
    pub name: String,
    /// The concrete span chosen.
    pub span_id: u64,
    /// Its wall-clock duration.
    pub duration_nanos: u64,
}

/// Why a `trace.jsonl` document could not be analyzed.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// A line failed to parse as JSON. Carries the 1-based line number and
    /// the parse error.
    BadLine(usize, json::JsonError),
    /// A record line parsed as JSON but is missing a required field.
    MissingField(usize, &'static str),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::BadLine(line, err) => write!(f, "trace line {line}: {err}"),
            AnalyzeError::MissingField(line, field) => {
                write!(f, "trace line {line}: record is missing field {field:?}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// The reconstructed forest of finished spans.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Every finished span, in end order.
    pub nodes: Vec<SpanNode>,
    /// Indices of root spans (no parent, or parent never finished).
    pub roots: Vec<usize>,
}

impl SpanTree {
    /// Builds the tree from in-memory trace records (e.g.
    /// [`crate::trace::RingSubscriber::records`]). Only
    /// [`RecordKind::SpanEnd`] records contribute — they carry the
    /// duration and re-carry the start fields.
    pub fn from_records(records: &[Record]) -> SpanTree {
        let spans = records.iter().filter(|r| r.kind == RecordKind::SpanEnd).map(|r| {
            let duration = r.duration_nanos.unwrap_or(0);
            SpanNode {
                name: r.name.to_string(),
                span_id: r.span_id,
                parent_id: r.parent_id,
                thread: r.thread,
                start_nanos: r.t_nanos.saturating_sub(duration),
                duration_nanos: duration,
                children: Vec::new(),
            }
        });
        Self::assemble(spans.collect())
    }

    /// Parses a `trace.jsonl` document (one record per line, the
    /// [`crate::trace::FileSubscriber`] format) and builds the tree.
    pub fn from_jsonl(text: &str) -> Result<SpanTree, AnalyzeError> {
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = json::parse(line).map_err(|e| AnalyzeError::BadLine(i + 1, e))?;
            if doc.get("kind").and_then(Json::as_str) != Some("span_end") {
                continue;
            }
            let field_u64 = |key: &'static str| {
                doc.get(key).and_then(Json::as_u64).ok_or(AnalyzeError::MissingField(i + 1, key))
            };
            let name = doc
                .get("name")
                .and_then(Json::as_str)
                .ok_or(AnalyzeError::MissingField(i + 1, "name"))?
                .to_string();
            let duration = field_u64("duration_nanos")?;
            let end = field_u64("t_nanos")?;
            spans.push(SpanNode {
                name,
                span_id: field_u64("span")?,
                parent_id: doc.get("parent").and_then(Json::as_u64),
                thread: field_u64("thread")?,
                start_nanos: end.saturating_sub(duration),
                duration_nanos: duration,
                children: Vec::new(),
            });
        }
        Ok(Self::assemble(spans))
    }

    /// Links parents to children and identifies roots.
    fn assemble(mut nodes: Vec<SpanNode>) -> SpanTree {
        let index_by_id: BTreeMap<u64, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n.span_id, i)).collect();
        let mut children: Vec<(usize, usize)> = Vec::new();
        let mut roots = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            match node.parent_id.and_then(|p| index_by_id.get(&p)) {
                Some(&parent) => children.push((parent, i)),
                // No parent, or the parent span never finished: a root.
                None => roots.push(i),
            }
        }
        for (parent, child) in children {
            nodes[parent].children.push(child);
        }
        // Children in start order, so stacks and paths read causally.
        let starts: Vec<u64> = nodes.iter().map(|n| n.start_nanos).collect();
        for node in &mut nodes {
            node.children.sort_by_key(|&c| starts[c]);
        }
        roots.sort_by_key(|&r| starts[r]);
        SpanTree { nodes, roots }
    }

    /// Self time of the span at `index`: its duration minus its children's
    /// durations (floored at zero — children measured on other threads or
    /// with clock jitter cannot drive attribution negative).
    pub fn self_nanos(&self, index: usize) -> u64 {
        let Some(node) = self.nodes.get(index) else { return 0 };
        let in_children: u64 =
            node.children.iter().filter_map(|&c| self.nodes.get(c)).map(|c| c.duration_nanos).sum();
        node.duration_nanos.saturating_sub(in_children)
    }

    /// Fraction of the span's duration attributed to named child spans
    /// (`0.0` for a childless span, capped at `1.0`).
    pub fn child_coverage(&self, index: usize) -> f64 {
        let Some(node) = self.nodes.get(index) else { return 0.0 };
        if node.duration_nanos == 0 {
            return 0.0;
        }
        let covered = node.duration_nanos.saturating_sub(self.self_nanos(index));
        (covered as f64 / node.duration_nanos as f64).min(1.0)
    }

    /// Indices of finished spans named `name`, in end order.
    pub fn spans_named(&self, name: &str) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].name == name).collect()
    }

    /// Aggregates spans by name: count, total and self time, sorted by
    /// total time descending (ties broken by name for determinism).
    pub fn stage_report(&self) -> Vec<StageStat> {
        let mut by_name: BTreeMap<&str, StageStat> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let entry = by_name.entry(&node.name).or_insert_with(|| StageStat {
                name: node.name.clone(),
                count: 0,
                total_nanos: 0,
                self_nanos: 0,
            });
            entry.count += 1;
            entry.total_nanos += node.duration_nanos;
            entry.self_nanos += self.self_nanos(i);
        }
        let mut rows: Vec<StageStat> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.name.cmp(&b.name)));
        rows
    }

    /// The critical path from the span at `root_index`: the chain formed
    /// by repeatedly descending into the longest-duration child. For a
    /// synchronous stage tree this is the sequence of stages an epoch's
    /// wall clock is bound by — shortening anything off this path cannot
    /// shorten the epoch by more than the next-longest sibling.
    pub fn critical_path(&self, root_index: usize) -> Vec<CriticalHop> {
        let mut path = Vec::new();
        let mut current = root_index;
        while let Some(node) = self.nodes.get(current) {
            path.push(CriticalHop {
                name: node.name.clone(),
                span_id: node.span_id,
                duration_nanos: node.duration_nanos,
            });
            let Some(&longest) = node.children.iter().max_by(|&&a, &&b| {
                match (self.nodes.get(a), self.nodes.get(b)) {
                    (Some(x), Some(y)) => {
                        x.duration_nanos.cmp(&y.duration_nanos).then(y.span_id.cmp(&x.span_id))
                    }
                    (x, y) => x.is_some().cmp(&y.is_some()),
                }
            }) else {
                break;
            };
            current = longest;
        }
        path
    }

    /// Collapsed-stack output over the whole forest: one
    /// `name;name;... <value>` line per unique stack, value = summed self
    /// time in integer microseconds, lines sorted lexicographically.
    /// Feed straight into `flamegraph.pl` or any compatible renderer.
    pub fn collapsed_stacks(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        let mut frames: Vec<&str> = Vec::new();
        for &root in &self.roots {
            self.collapse_into(root, &mut frames, &mut stacks);
        }
        let mut out = String::new();
        for (stack, micros) in &stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&micros.to_string());
            out.push('\n');
        }
        out
    }

    fn collapse_into<'a>(
        &'a self,
        index: usize,
        frames: &mut Vec<&'a str>,
        stacks: &mut BTreeMap<String, u64>,
    ) {
        let Some(node) = self.nodes.get(index) else { return };
        frames.push(&node.name);
        let self_micros = self.self_nanos(index) / 1_000;
        if self_micros > 0 {
            *stacks.entry(frames.join(";")).or_insert(0) += self_micros;
        }
        for &child in &node.children {
            self.collapse_into(child, frames, stacks);
        }
        frames.pop();
    }

    /// Serializes the stage report as a JSON document (the analyzer's
    /// machine-readable output, written by `observe_pipeline` alongside
    /// the collapsed stacks).
    pub fn stage_report_json(&self) -> String {
        let total_root_nanos: u64 =
            self.roots.iter().filter_map(|&r| self.nodes.get(r)).map(|n| n.duration_nanos).sum();
        let mut out = String::from("{\n  \"spans\": ");
        out.push_str(&self.nodes.len().to_string());
        out.push_str(",\n  \"roots\": ");
        out.push_str(&self.roots.len().to_string());
        out.push_str(",\n  \"root_wall_nanos\": ");
        out.push_str(&total_root_nanos.to_string());
        out.push_str(",\n  \"stages\": [\n");
        let rows = self.stage_report();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_nanos\": {}, \
                 \"self_nanos\": {}, \"mean_seconds\": {}}}{}\n",
                crate::metrics::json_escape(&row.name),
                row.count,
                row.total_nanos,
                row.self_nanos,
                crate::metrics::json_f64(if row.count == 0 {
                    0.0
                } else {
                    row.total_nanos as f64 / row.count as f64 / 1e9
                }),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built record: `(name, id, parent, end_nanos, duration)`.
    fn span_end(
        name: &'static str,
        span_id: u64,
        parent_id: Option<u64>,
        t_nanos: u64,
        duration_nanos: u64,
    ) -> Record {
        Record {
            kind: RecordKind::SpanEnd,
            name,
            span_id,
            parent_id,
            t_nanos,
            duration_nanos: Some(duration_nanos),
            level: crate::Level::Info,
            thread: 1,
            fields: Vec::new(),
        }
    }

    /// epoch(100) { phase1(60) { solve(50) } phase2(25) } — 15 self.
    fn epoch_records() -> Vec<Record> {
        vec![
            span_end("lp.solve", 3, Some(2), 60, 50),
            span_end("te.phase1", 2, Some(1), 65, 60),
            span_end("te.phase2", 4, Some(1), 95, 25),
            span_end("epoch", 1, None, 100, 100),
        ]
    }

    #[test]
    fn tree_links_children_and_roots() {
        let tree = SpanTree::from_records(&epoch_records());
        assert_eq!(tree.nodes.len(), 4);
        assert_eq!(tree.roots.len(), 1);
        let root = tree.roots[0];
        assert_eq!(tree.nodes[root].name, "epoch");
        let child_names: Vec<&str> =
            tree.nodes[root].children.iter().map(|&c| tree.nodes[c].name.as_str()).collect();
        assert_eq!(child_names, ["te.phase1", "te.phase2"], "children in start order");
    }

    #[test]
    fn self_time_subtracts_children() {
        let tree = SpanTree::from_records(&epoch_records());
        let root = tree.roots[0];
        assert_eq!(tree.self_nanos(root), 15); // 100 - 60 - 25
        let phase1 = tree.spans_named("te.phase1")[0];
        assert_eq!(tree.self_nanos(phase1), 10); // 60 - 50
        let solve = tree.spans_named("lp.solve")[0];
        assert_eq!(tree.self_nanos(solve), 50);
        assert!((tree.child_coverage(root) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn critical_path_descends_longest_child() {
        let tree = SpanTree::from_records(&epoch_records());
        let path = tree.critical_path(tree.roots[0]);
        let names: Vec<&str> = path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["epoch", "te.phase1", "lp.solve"]);
    }

    #[test]
    fn collapsed_stacks_sum_self_time() {
        // Durations in whole microseconds so the µs rounding is exact.
        let records = vec![
            span_end("lp.solve", 3, Some(2), 60_000, 50_000),
            span_end("te.phase1", 2, Some(1), 65_000, 60_000),
            span_end("te.phase2", 4, Some(1), 95_000, 25_000),
            span_end("epoch", 1, None, 100_000, 100_000),
        ];
        let tree = SpanTree::from_records(&records);
        let folded = tree.collapsed_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            ["epoch 15", "epoch;te.phase1 10", "epoch;te.phase1;lp.solve 50", "epoch;te.phase2 25",]
        );
        // Total collapsed value equals the root duration (all time is
        // attributed somewhere).
        let total: u64 =
            lines.iter().filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn jsonl_roundtrip_matches_in_memory_tree() {
        let records = epoch_records();
        let jsonl: String =
            records.iter().map(|r| r.to_json_line() + "\n").collect::<Vec<_>>().join("");
        let from_file = SpanTree::from_jsonl(&jsonl).expect("valid trace.jsonl");
        let from_memory = SpanTree::from_records(&records);
        assert_eq!(from_file.nodes.len(), from_memory.nodes.len());
        let path_file = from_file.critical_path(from_file.roots[0]);
        let path_memory = from_memory.critical_path(from_memory.roots[0]);
        assert_eq!(path_file, path_memory);
        assert_eq!(from_file.collapsed_stacks(), from_memory.collapsed_stacks());
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        let text = "{\"kind\":\"span_end\",\"name\":\"a\",\"span\":1,\"parent\":null,\
                    \"t_nanos\":5,\"duration_nanos\":5,\"level\":\"info\",\"thread\":1,\"fields\":{}}\n\
                    not json\n";
        match SpanTree::from_jsonl(text) {
            Err(AnalyzeError::BadLine(line, _)) => assert_eq!(line, 2),
            other => panic!("expected BadLine, got {other:?}"),
        }
        // A span_end missing its duration is a typed error, not a panic.
        let missing = "{\"kind\":\"span_end\",\"name\":\"a\",\"span\":1,\"parent\":null,\
                       \"t_nanos\":5,\"level\":\"info\",\"thread\":1,\"fields\":{}}\n";
        assert!(matches!(
            SpanTree::from_jsonl(missing),
            Err(AnalyzeError::MissingField(1, "duration_nanos"))
        ));
    }

    #[test]
    fn unfinished_parent_promotes_children_to_roots() {
        // Child references span 99 which never ended.
        let records = vec![span_end("orphan", 5, Some(99), 10, 10)];
        let tree = SpanTree::from_records(&records);
        assert_eq!(tree.roots, vec![0]);
    }

    #[test]
    fn stage_report_aggregates_and_sorts() {
        let records = vec![
            span_end("solve", 2, Some(1), 30, 20),
            span_end("solve", 3, Some(1), 60, 25),
            span_end("epoch", 1, None, 100, 100),
        ];
        let tree = SpanTree::from_records(&records);
        let report = tree.stage_report();
        assert_eq!(report[0].name, "epoch");
        assert_eq!(report[1].name, "solve");
        assert_eq!(report[1].count, 2);
        assert_eq!(report[1].total_nanos, 45);
        assert_eq!(report[1].self_nanos, 45);
        assert_eq!(report[0].self_nanos, 55);
        let json = tree.stage_report_json();
        let doc = crate::json::parse(&json).expect("stage report is valid JSON");
        assert_eq!(doc.get("spans").and_then(Json::as_u64), Some(3));
    }
}
