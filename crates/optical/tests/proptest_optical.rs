//! Property-based tests of the optical substrate on random networks.

use arrow_optical::{
    greedy_assign, k_shortest_paths, solve_relaxed, Lightpath, OpticalNetwork, RoadmId, RwaConfig,
    SpectrumMask,
};
use proptest::prelude::*;

/// A random connected network: a ring of `n` ROADMs plus `extra` chords,
/// with `lps` random single-slot lightpaths provisioned first-fit.
fn random_net(n: usize, extra: &[(usize, usize)], lps: &[(usize, usize)]) -> OpticalNetwork {
    let mut net = OpticalNetwork::new(16);
    let r = net.add_roadms(n);
    for i in 0..n {
        net.add_fiber(r[i], r[(i + 1) % n], 200.0 + 50.0 * (i as f64 % 3.0)).unwrap();
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            net.add_fiber(r[a], r[b], 400.0).unwrap();
        }
    }
    for &(a, b) in lps {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        if let Some(p) = arrow_optical::shortest_path(&net, r[a], r[b], &[], &[]) {
            // First free slot end-to-end.
            if let Some(w) =
                (0..16).find(|&w| p.fibers.iter().all(|&f| net.fiber(f).spectrum.is_free(w)))
            {
                net.provision(Lightpath {
                    src: r[a],
                    dst: r[b],
                    path: p.fibers,
                    slots: vec![w],
                    gbps_per_wavelength: 100.0,
                })
                .unwrap();
            }
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Yen's paths are simple, sorted by length, distinct, and consistent
    /// with Dijkstra's first path.
    #[test]
    fn ksp_invariants(
        n in 4usize..9,
        extra in proptest::collection::vec((0usize..9, 0usize..9), 0..4),
        src in 0usize..9,
        dst in 0usize..9,
        k in 1usize..6,
    ) {
        let net = random_net(n, &extra, &[]);
        let (src, dst) = (src % n, dst % n);
        if src == dst {
            return Ok(());
        }
        let paths = k_shortest_paths(&net, RoadmId(src), RoadmId(dst), k, &[], f64::INFINITY);
        prop_assert!(!paths.is_empty(), "ring is connected");
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].length_km <= w[1].length_km + 1e-9, "not sorted");
            prop_assert!(w[0].fibers != w[1].fibers, "duplicate path");
        }
        for p in &paths {
            // Walk and check simplicity + endpoint correctness.
            let mut at = RoadmId(src);
            let mut seen = vec![at];
            for &f in &p.fibers {
                at = net.fiber(f).other_end(at);
                prop_assert!(!seen.contains(&at), "loop in path");
                seen.push(at);
            }
            prop_assert_eq!(at, RoadmId(dst));
            prop_assert!((net.path_length_km(&p.fibers) - p.length_km).abs() < 1e-9);
        }
    }

    /// The relaxed RWA never restores more wavelengths than were lost, and
    /// the greedy exact assignment never exceeds the LP relaxation's
    /// optimum (integral ≤ fractional) on a per-scenario total basis.
    #[test]
    fn rwa_relaxation_dominates_greedy(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
        lps in proptest::collection::vec((0usize..8, 0usize..8), 1..10),
        cut in 0usize..8,
    ) {
        let net = random_net(n, &extra, &lps);
        let cut = arrow_optical::FiberId(cut % net.num_fibers());
        if net.affected_lightpaths(&[cut]).is_empty() {
            return Ok(());
        }
        let cfg = RwaConfig { allow_modulation_change: true, ..Default::default() };
        let relaxed = solve_relaxed(&net, &[cut], &cfg);
        let exact = greedy_assign(&net, &[cut], &cfg, None);
        let lost: usize = relaxed.links.iter().map(|l| l.lost_wavelengths).sum();
        let frac: f64 = relaxed.total_wavelengths;
        let integral: usize = exact.iter().map(|a| a.wavelengths()).sum();
        prop_assert!(frac <= lost as f64 + 1e-6, "restored more than lost");
        prop_assert!(integral as f64 <= frac + 1e-4,
            "greedy {integral} beat the LP bound {frac}");
    }

    /// Spectrum masks: occupy/release round-trip and counting laws hold for
    /// arbitrary operation sequences.
    #[test]
    fn spectrum_counting_laws(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..80)) {
        let mut mask = SpectrumMask::new(64);
        let mut model = std::collections::HashSet::new();
        for (w, occupy) in ops {
            if occupy {
                let changed = mask.occupy(w);
                prop_assert_eq!(changed, model.insert(w));
            } else {
                let changed = mask.release(w);
                prop_assert_eq!(changed, model.remove(&w));
            }
        }
        prop_assert_eq!(mask.occupied_count(), model.len());
        prop_assert_eq!(mask.free_count(), 64 - model.len());
        prop_assert_eq!(mask.occupied_slots().count(), model.len());
    }

    /// Provisioning is transactional: a slot collision leaves no partial
    /// occupancy behind.
    #[test]
    fn provision_is_transactional(
        n in 4usize..8,
        lps in proptest::collection::vec((0usize..8, 0usize..8), 1..8),
    ) {
        let mut net = random_net(n, &[], &lps);
        let before: Vec<usize> =
            net.fibers().iter().map(|f| f.spectrum.occupied_count()).collect();
        // Try to provision over an occupied slot (slot of first lightpath).
        if let Some(lp0) = net.lightpaths().first().cloned() {
            let clash = Lightpath {
                src: lp0.src,
                dst: lp0.dst,
                path: lp0.path.clone(),
                slots: lp0.slots.clone(),
                gbps_per_wavelength: 100.0,
            };
            prop_assert!(net.provision(clash).is_err());
            let after: Vec<usize> =
                net.fibers().iter().map(|f| f.spectrum.occupied_count()).collect();
            prop_assert_eq!(before, after, "failed provision mutated spectrum");
        }
    }
}
