//! # arrow-optical — the optical-layer substrate
//!
//! Models the bottom half of the ARROW system (the paper's Fig. 1/Fig. 2
//! optical view): ROADM sites connected by fibers, per-fiber DWDM spectrum
//! occupancy, provisioned lightpaths (the optical realization of IP links),
//! transponder modulation reach (Table 6), surrogate-path routing (Yen's
//! k-shortest paths), and the restoration Routing-and-Wavelength-Assignment
//! formulation of Appendix A.2 with both an LP relaxation (the seed for
//! LotteryTicket randomized rounding) and an exact greedy assigner (the
//! ticket feasibility filter and the ARROW-Naive restoration plan).
//!
//! Analyses built on top reproduce the paper's measurement methodology:
//! restoration ratios (Fig. 6), restoration-path inflation (Fig. 17) and
//! ROADM reconfiguration counts (Fig. 19).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod ksp;
pub mod modulation;
pub mod restoration;
pub mod rwa;
pub mod spectrum;

pub use graph::{Fiber, FiberId, Lightpath, LightpathId, OpticalError, OpticalNetwork, RoadmId};
pub use ksp::{k_shortest_paths, shortest_path, FiberPath};
pub use modulation::{ModulationRow, ModulationTable};
pub use restoration::{
    all_single_cut_ratios, empirical_cdf, path_inflation_analysis, roadm_reconfig_count,
    PathInflation, RestorationRatio, RoadmReconfigCount,
};
pub use rwa::{
    greedy_assign, is_feasible, solve_relaxed, ExactAssignment, LinkRestoration, RwaConfig,
    RwaSolution,
};
pub use spectrum::{Band, SpectrumMask, DEFAULT_SLOTS};
