//! Optical-layer network: ROADM nodes, fiber edges, provisioned lightpaths.
//!
//! This module models the bottom half of Fig. 1: ROADMs connected by fibers,
//! each fiber carrying a spectrum of wavelength slots, and *lightpaths* —
//! groups of wavelengths routed end-to-end over a fiber path. One lightpath
//! is the optical realization of one IP link (one router port-channel); its
//! light passes through intermediate ROADMs purely in the optical domain, so
//! the IP layer sees a direct link between the endpoints (Fig. 2).

use crate::spectrum::SpectrumMask;
use serde::{Deserialize, Serialize};

/// Identifier of a ROADM site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoadmId(pub usize);

/// Identifier of a fiber (undirected edge between two ROADMs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiberId(pub usize);

/// Identifier of a provisioned lightpath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LightpathId(pub usize);

/// One fiber span between two ROADM sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fiber {
    /// One endpoint.
    pub a: RoadmId,
    /// The other endpoint.
    pub b: RoadmId,
    /// Physical length in km (drives modulation reach and amplifier count).
    pub length_km: f64,
    /// Spectrum occupancy of this fiber.
    pub spectrum: SpectrumMask,
}

impl Fiber {
    /// The endpoint opposite `r`.
    ///
    /// Calling this with a ROADM that is not an endpoint is a caller bug;
    /// debug builds assert, release builds return `a` (the graph walks
    /// that use this always iterate a node's own incident fibers, so the
    /// precondition holds by construction).
    pub fn other_end(&self, r: RoadmId) -> RoadmId {
        debug_assert!(self.touches(r), "ROADM {r:?} is not an endpoint of this fiber");
        if r == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Whether `r` is an endpoint.
    pub fn touches(&self, r: RoadmId) -> bool {
        r == self.a || r == self.b
    }
}

/// A provisioned lightpath: `wavelength_count` wavelengths on a contiguous
/// fiber path, all on the same spectrum slots end-to-end (wavelength
/// continuity), all modulated at `gbps_per_wavelength`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lightpath {
    /// Source ROADM (add/drop site).
    pub src: RoadmId,
    /// Destination ROADM (add/drop site).
    pub dst: RoadmId,
    /// Fibers traversed, in order from `src` to `dst`.
    pub path: Vec<FiberId>,
    /// Spectrum slots used, identical on every fiber of the path.
    pub slots: Vec<usize>,
    /// Datarate of each wavelength (from the modulation table).
    pub gbps_per_wavelength: f64,
}

impl Lightpath {
    /// Total IP-layer capacity this lightpath provides, in Gbps.
    pub fn capacity_gbps(&self) -> f64 {
        self.slots.len() as f64 * self.gbps_per_wavelength
    }

    /// Number of wavelengths (γ_e in the paper's RWA formulation).
    pub fn wavelength_count(&self) -> usize {
        self.slots.len()
    }
}

/// Errors from building or mutating an optical network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpticalError {
    /// A referenced ROADM does not exist.
    UnknownRoadm(usize),
    /// A referenced fiber does not exist.
    UnknownFiber(usize),
    /// The fiber path is empty or not contiguous from src to dst.
    BrokenPath,
    /// A required spectrum slot is already occupied on some fiber.
    SlotOccupied {
        /// The offending fiber.
        fiber: usize,
        /// The occupied slot.
        slot: usize,
    },
}

impl std::fmt::Display for OpticalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpticalError::UnknownRoadm(r) => write!(f, "unknown ROADM {r}"),
            OpticalError::UnknownFiber(x) => write!(f, "unknown fiber {x}"),
            OpticalError::BrokenPath => write!(f, "fiber path is not contiguous"),
            OpticalError::SlotOccupied { fiber, slot } => {
                write!(f, "slot {slot} already occupied on fiber {fiber}")
            }
        }
    }
}

impl std::error::Error for OpticalError {}

/// The optical network: ROADM sites, fibers, and provisioned lightpaths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpticalNetwork {
    num_slots: usize,
    num_roadms: usize,
    fibers: Vec<Fiber>,
    /// Fiber ids incident to each ROADM.
    adjacency: Vec<Vec<FiberId>>,
    lightpaths: Vec<Lightpath>,
}

impl OpticalNetwork {
    /// An empty network whose fibers will carry `num_slots` wavelength slots.
    pub fn new(num_slots: usize) -> Self {
        OpticalNetwork {
            num_slots,
            num_roadms: 0,
            fibers: Vec::new(),
            adjacency: Vec::new(),
            lightpaths: Vec::new(),
        }
    }

    /// Adds a ROADM site.
    pub fn add_roadm(&mut self) -> RoadmId {
        let id = RoadmId(self.num_roadms);
        self.num_roadms += 1;
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `n` ROADM sites, returning their ids.
    pub fn add_roadms(&mut self, n: usize) -> Vec<RoadmId> {
        (0..n).map(|_| self.add_roadm()).collect()
    }

    /// Adds a fiber between two existing ROADMs.
    pub fn add_fiber(
        &mut self,
        a: RoadmId,
        b: RoadmId,
        length_km: f64,
    ) -> Result<FiberId, OpticalError> {
        for r in [a, b] {
            if r.0 >= self.num_roadms {
                return Err(OpticalError::UnknownRoadm(r.0));
            }
        }
        let id = FiberId(self.fibers.len());
        self.fibers.push(Fiber { a, b, length_km, spectrum: SpectrumMask::new(self.num_slots) });
        self.adjacency[a.0].push(id);
        self.adjacency[b.0].push(id);
        Ok(id)
    }

    /// Number of wavelength slots per fiber.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of ROADM sites.
    pub fn num_roadms(&self) -> usize {
        self.num_roadms
    }

    /// Number of fibers.
    pub fn num_fibers(&self) -> usize {
        self.fibers.len()
    }

    /// All fibers, indexable by [`FiberId`].
    pub fn fibers(&self) -> &[Fiber] {
        &self.fibers
    }

    /// One fiber.
    pub fn fiber(&self, id: FiberId) -> &Fiber {
        &self.fibers[id.0]
    }

    /// Fibers incident to a ROADM.
    pub fn incident_fibers(&self, r: RoadmId) -> &[FiberId] {
        &self.adjacency[r.0]
    }

    /// All provisioned lightpaths, indexable by [`LightpathId`].
    pub fn lightpaths(&self) -> &[Lightpath] {
        &self.lightpaths
    }

    /// One lightpath.
    pub fn lightpath(&self, id: LightpathId) -> &Lightpath {
        &self.lightpaths[id.0]
    }

    /// Total length of a fiber path in km.
    pub fn path_length_km(&self, path: &[FiberId]) -> f64 {
        path.iter().map(|&f| self.fibers[f.0].length_km).sum()
    }

    /// Validates that `path` is a contiguous walk from `src` to `dst`.
    pub fn validate_path(
        &self,
        src: RoadmId,
        dst: RoadmId,
        path: &[FiberId],
    ) -> Result<(), OpticalError> {
        if path.is_empty() {
            return Err(OpticalError::BrokenPath);
        }
        let mut at = src;
        for &fid in path {
            let fiber = self.fibers.get(fid.0).ok_or(OpticalError::UnknownFiber(fid.0))?;
            if !fiber.touches(at) {
                return Err(OpticalError::BrokenPath);
            }
            at = fiber.other_end(at);
        }
        if at != dst {
            return Err(OpticalError::BrokenPath);
        }
        Ok(())
    }

    /// Provisions a lightpath, occupying its slots on every fiber of the
    /// path. Slots must be free on all fibers (wavelength continuity).
    pub fn provision(&mut self, lp: Lightpath) -> Result<LightpathId, OpticalError> {
        self.validate_path(lp.src, lp.dst, &lp.path)?;
        for &fid in &lp.path {
            for &w in &lp.slots {
                if self.fibers[fid.0].spectrum.is_occupied(w) {
                    return Err(OpticalError::SlotOccupied { fiber: fid.0, slot: w });
                }
            }
        }
        for &fid in &lp.path {
            for &w in &lp.slots {
                self.fibers[fid.0].spectrum.occupy(w);
            }
        }
        let id = LightpathId(self.lightpaths.len());
        self.lightpaths.push(lp);
        Ok(id)
    }

    /// Lightpaths whose fiber path traverses any of `cut` — the IP links
    /// that go dark when those fibers are cut.
    pub fn affected_lightpaths(&self, cut: &[FiberId]) -> Vec<LightpathId> {
        self.lightpaths
            .iter()
            .enumerate()
            .filter(|(_, lp)| lp.path.iter().any(|f| cut.contains(f)))
            .map(|(i, _)| LightpathId(i))
            .collect()
    }

    /// Spectrum availability for restoration after cutting `cut`:
    /// per-fiber masks where the failed lightpaths' own slots (on surviving
    /// fibers) have been released — their transponders go idle, freeing the
    /// spectrum they occupied.
    pub fn restoration_spectrum(&self, cut: &[FiberId]) -> Vec<SpectrumMask> {
        let mut masks: Vec<SpectrumMask> = self.fibers.iter().map(|f| f.spectrum.clone()).collect();
        for lp_id in self.affected_lightpaths(cut) {
            let lp = &self.lightpaths[lp_id.0];
            for &fid in &lp.path {
                if cut.contains(&fid) {
                    continue;
                }
                for &w in &lp.slots {
                    masks[fid.0].release(w);
                }
            }
        }
        masks
    }

    /// Upgrades every fiber to a C+L spectrum (Appendix A.10): the grid
    /// grows to `new_slots` slots, with existing C-band occupancy kept and
    /// the appended L-band slots free (to be noise-loaded). Returns the
    /// number of slots added per fiber.
    ///
    /// # Panics
    /// Panics if `new_slots` is smaller than the current grid — an L-band
    /// upgrade never shrinks spectrum.
    pub fn enable_l_band(&mut self, new_slots: usize) -> usize {
        assert!(
            new_slots >= self.num_slots,
            "C+L upgrade cannot shrink the grid ({} -> {new_slots})",
            self.num_slots
        );
        let added = new_slots - self.num_slots;
        for fiber in self.fibers.iter_mut() {
            fiber.spectrum.extend_to(new_slots);
        }
        self.num_slots = new_slots;
        added
    }

    /// The band a slot belongs to, given the C-band width `c_slots`.
    pub fn band_of(slot: usize, c_slots: usize) -> crate::spectrum::Band {
        if slot < c_slots {
            crate::spectrum::Band::C
        } else {
            crate::spectrum::Band::L
        }
    }

    /// Provisioned capacity (Gbps) riding each fiber — `W_φ` in §2.3.
    pub fn provisioned_gbps_per_fiber(&self) -> Vec<f64> {
        let mut cap = vec![0.0; self.fibers.len()];
        for lp in &self.lightpaths {
            for &fid in &lp.path {
                cap[fid.0] += lp.capacity_gbps();
            }
        }
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small triangle network with one lightpath A--B.
    fn triangle() -> (OpticalNetwork, Vec<RoadmId>, Vec<FiberId>) {
        let mut net = OpticalNetwork::new(8);
        let r = net.add_roadms(3);
        let fab = net.add_fiber(r[0], r[1], 100.0).unwrap();
        let fbc = net.add_fiber(r[1], r[2], 150.0).unwrap();
        let fca = net.add_fiber(r[2], r[0], 200.0).unwrap();
        (net, r, vec![fab, fbc, fca])
    }

    #[test]
    fn build_and_query() {
        let (net, r, f) = triangle();
        assert_eq!(net.num_roadms(), 3);
        assert_eq!(net.num_fibers(), 3);
        assert_eq!(net.incident_fibers(r[0]).len(), 2);
        assert_eq!(net.fiber(f[0]).other_end(r[0]), r[1]);
        assert_eq!(net.path_length_km(&[f[0], f[1]]), 250.0);
    }

    #[test]
    fn provision_occupies_spectrum_end_to_end() {
        let (mut net, r, f) = triangle();
        let id = net
            .provision(Lightpath {
                src: r[0],
                dst: r[2],
                path: vec![f[0], f[1]],
                slots: vec![0, 1],
                gbps_per_wavelength: 200.0,
            })
            .unwrap();
        assert_eq!(net.lightpath(id).capacity_gbps(), 400.0);
        assert!(net.fiber(f[0]).spectrum.is_occupied(0));
        assert!(net.fiber(f[1]).spectrum.is_occupied(1));
        assert!(net.fiber(f[2]).spectrum.is_free(0));
    }

    #[test]
    fn provision_rejects_collisions() {
        let (mut net, r, f) = triangle();
        net.provision(Lightpath {
            src: r[0],
            dst: r[1],
            path: vec![f[0]],
            slots: vec![3],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        let err = net
            .provision(Lightpath {
                src: r[0],
                dst: r[2],
                path: vec![f[0], f[1]],
                slots: vec![3],
                gbps_per_wavelength: 100.0,
            })
            .unwrap_err();
        assert_eq!(err, OpticalError::SlotOccupied { fiber: f[0].0, slot: 3 });
        // And nothing was partially occupied on fiber 1.
        assert!(net.fiber(f[1]).spectrum.is_free(3));
    }

    #[test]
    fn broken_paths_rejected() {
        let (mut net, r, f) = triangle();
        let err = net
            .provision(Lightpath {
                src: r[0],
                dst: r[2],
                path: vec![f[1]], // does not start at r0
                slots: vec![0],
                gbps_per_wavelength: 100.0,
            })
            .unwrap_err();
        assert_eq!(err, OpticalError::BrokenPath);
    }

    #[test]
    fn affected_lightpaths_and_release() {
        let (mut net, r, f) = triangle();
        net.provision(Lightpath {
            src: r[0],
            dst: r[2],
            path: vec![f[0], f[1]],
            slots: vec![0],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        net.provision(Lightpath {
            src: r[2],
            dst: r[0],
            path: vec![f[2]],
            slots: vec![1],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        let affected = net.affected_lightpaths(&[f[1]]);
        assert_eq!(affected, vec![LightpathId(0)]);
        // After cutting f1, the failed lightpath's slot on f0 is released.
        let masks = net.restoration_spectrum(&[f[1]]);
        assert!(masks[f[0].0].is_free(0));
        // The healthy lightpath on f2 keeps its slot.
        assert!(masks[f[2].0].is_occupied(1));
    }

    #[test]
    fn l_band_upgrade_expands_all_fibers() {
        let (mut net, r, f) = triangle();
        net.provision(Lightpath {
            src: r[0],
            dst: r[1],
            path: vec![f[0]],
            slots: vec![0, 1],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        let before_free = net.fiber(f[0]).spectrum.free_count();
        let added = net.enable_l_band(16);
        assert_eq!(added, 8);
        assert_eq!(net.num_slots(), 16);
        assert!(net.fiber(f[0]).spectrum.is_occupied(0), "C-band data kept");
        assert_eq!(net.fiber(f[0]).spectrum.free_count(), before_free + 8);
        // New lightpaths may use L-band slots end-to-end.
        net.provision(Lightpath {
            src: r[0],
            dst: r[2],
            path: vec![f[2]],
            slots: vec![12],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        assert_eq!(OpticalNetwork::band_of(3, 8), crate::spectrum::Band::C);
        assert_eq!(OpticalNetwork::band_of(12, 8), crate::spectrum::Band::L);
    }

    #[test]
    fn provisioned_capacity_per_fiber() {
        let (mut net, r, f) = triangle();
        net.provision(Lightpath {
            src: r[0],
            dst: r[2],
            path: vec![f[0], f[1]],
            slots: vec![0, 1, 2],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        let cap = net.provisioned_gbps_per_fiber();
        assert_eq!(cap, vec![300.0, 300.0, 0.0]);
    }
}
