//! Transponder modulation: datarate vs. optical reach.
//!
//! Reproduces Table 6 of the paper — the terrestrial long-haul transponder
//! specification used to plan Facebook's optical layer. For the same
//! wavelength slot, a more aggressive modulation carries more Gbps but
//! tolerates a shorter transmission distance.

/// One row of the transponder spec sheet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulationRow {
    /// Per-wavelength datarate in Gbps.
    pub gbps: f64,
    /// Maximum transmission reach in km.
    pub reach_km: f64,
}

/// The datarate-vs-reach ladder (Table 6), highest datarate first.
#[derive(Debug, Clone, PartialEq)]
pub struct ModulationTable {
    rows: Vec<ModulationRow>,
}

impl Default for ModulationTable {
    /// The paper's Table 6 exactly.
    fn default() -> Self {
        ModulationTable {
            rows: vec![
                ModulationRow { gbps: 400.0, reach_km: 1000.0 },
                ModulationRow { gbps: 300.0, reach_km: 1500.0 },
                ModulationRow { gbps: 200.0, reach_km: 3000.0 },
                ModulationRow { gbps: 100.0, reach_km: 5000.0 },
            ],
        }
    }
}

impl ModulationTable {
    /// Builds a custom ladder. Rows are sorted by descending datarate.
    ///
    /// # Panics
    /// Panics if empty or if reach does not increase as datarate decreases
    /// (a physically meaningless spec sheet).
    pub fn new(mut rows: Vec<ModulationRow>) -> Self {
        assert!(!rows.is_empty(), "modulation table cannot be empty");
        rows.sort_by(|a, b| b.gbps.total_cmp(&a.gbps));
        for pair in rows.windows(2) {
            assert!(
                pair[0].reach_km <= pair[1].reach_km,
                "higher datarate must not out-reach lower datarate"
            );
        }
        ModulationTable { rows }
    }

    /// Rows of the ladder, highest datarate first.
    pub fn rows(&self) -> &[ModulationRow] {
        &self.rows
    }

    /// Highest datarate whose reach covers a path of `length_km`, or `None`
    /// if the path exceeds every row's reach (no modulation works).
    pub fn max_gbps_for_length(&self, length_km: f64) -> Option<f64> {
        self.rows.iter().find(|r| r.reach_km >= length_km).map(|r| r.gbps)
    }

    /// Reach of the given datarate, or `None` if the ladder has no such row.
    pub fn reach_for_gbps(&self, gbps: f64) -> Option<f64> {
        self.rows.iter().find(|r| (r.gbps - gbps).abs() < 1e-9).map(|r| r.reach_km)
    }

    /// The maximum reach of any modulation (the 100 Gbps row in Table 6).
    pub fn max_reach_km(&self) -> f64 {
        self.rows.last().map(|r| r.reach_km).unwrap_or(0.0)
    }

    /// Whether a wavelength modulated at `gbps` can move to a path of
    /// `new_length_km` without a modulation change (Appendix A.1).
    pub fn supports_without_change(&self, gbps: f64, new_length_km: f64) -> bool {
        self.reach_for_gbps(gbps).is_some_and(|reach| new_length_km <= reach)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_values() {
        let t = ModulationTable::default();
        assert_eq!(t.max_gbps_for_length(900.0), Some(400.0));
        assert_eq!(t.max_gbps_for_length(1000.0), Some(400.0));
        assert_eq!(t.max_gbps_for_length(1200.0), Some(300.0));
        assert_eq!(t.max_gbps_for_length(2500.0), Some(200.0));
        assert_eq!(t.max_gbps_for_length(4800.0), Some(100.0));
        assert_eq!(t.max_gbps_for_length(5001.0), None);
    }

    #[test]
    fn reach_lookup() {
        let t = ModulationTable::default();
        assert_eq!(t.reach_for_gbps(200.0), Some(3000.0));
        assert_eq!(t.reach_for_gbps(150.0), None);
        assert_eq!(t.max_reach_km(), 5000.0);
    }

    #[test]
    fn modulation_change_predicate() {
        let t = ModulationTable::default();
        // A 200G wave moving to a 2,900 km path keeps its modulation…
        assert!(t.supports_without_change(200.0, 2900.0));
        // …but must step down on a 3,100 km path.
        assert!(!t.supports_without_change(200.0, 3100.0));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_table_rejected() {
        let _ = ModulationTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must not out-reach")]
    fn inverted_ladder_rejected() {
        let _ = ModulationTable::new(vec![
            ModulationRow { gbps: 400.0, reach_km: 9000.0 },
            ModulationRow { gbps: 100.0, reach_km: 100.0 },
        ]);
    }
}
