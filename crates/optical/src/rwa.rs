//! Routing and Wavelength Assignment (RWA) for restoration.
//!
//! Implements Appendix A.2 of the paper. Given a set of cut fibers, the
//! lightpaths (IP links) riding them must be re-homed onto *surrogate*
//! fiber paths:
//!
//! 1. **Routing** — for each failed lightpath, compute `k` shortest
//!    surrogate paths avoiding the cut fibers, capped by the modulation
//!    reach (Table 6). Multiple restored wavelengths of one IP link may
//!    split across several surrogate paths (LACP aggregates them).
//! 2. **Wavelength assignment** — an LP deciding how many wavelengths each
//!    `(link, path)` pair restores on which slots, subject to per-fiber slot
//!    availability and the wavelength-continuity constraint (a slot variable
//!    spans *all* fibers of its path, which is exactly constraint (16)).
//!    The 0/1 ILP is relaxed to an LP per the paper; the fractional
//!    wavelength counts `λ_e` seed ARROW's randomized rounding.
//!
//! The module also provides an **exact greedy first-fit assigner**, used (a)
//! to build ARROW-Naive's single restoration plan and (b) as the ticket
//! feasibility check (§3.2 "Handling LotteryTickets' feasibility"). The
//! greedy check is conservative: it may reject a ticket a smarter exact
//! search could realize, but it never accepts an infeasible one.

use crate::graph::{FiberId, LightpathId, OpticalNetwork};
use crate::ksp::{k_shortest_paths, FiberPath};
use crate::modulation::ModulationTable;
use crate::spectrum::SpectrumMask;
use arrow_lp::{LinExpr, Model, Objective, Sense, SolverConfig};

/// Configuration of the restoration RWA.
#[derive(Debug, Clone)]
pub struct RwaConfig {
    /// Number of candidate surrogate paths per failed IP link.
    pub k_paths: usize,
    /// Allow transponders to retune to any free frequency. When `false`,
    /// restored wavelengths may only reuse their original slots (the
    /// "without frequency tuning" variant of Fig. 17).
    pub allow_retuning: bool,
    /// Allow stepping down the modulation when the surrogate path exceeds
    /// the current modulation's reach (Appendix A.1).
    pub allow_modulation_change: bool,
    /// Modulation spec sheet.
    pub modulation: ModulationTable,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl Default for RwaConfig {
    fn default() -> Self {
        RwaConfig {
            k_paths: 3,
            allow_retuning: true,
            allow_modulation_change: false,
            modulation: ModulationTable::default(),
            solver: SolverConfig::default(),
        }
    }
}

/// Fractional restoration of one failed IP link.
#[derive(Debug, Clone)]
pub struct LinkRestoration {
    /// Which lightpath (IP link) this describes.
    pub lightpath: LightpathId,
    /// Wavelengths lost with the cut (γ_e).
    pub lost_wavelengths: usize,
    /// Candidate surrogate paths (possibly empty if disconnected).
    pub paths: Vec<FiberPath>,
    /// Per-wavelength datarate usable on each candidate path.
    pub path_gbps: Vec<f64>,
    /// Fractional restored wavelengths per path (LP relaxation output).
    pub per_path_wavelengths: Vec<f64>,
    /// Total fractional restored wavelengths, `λ_e = Σ_k λ_e^k`.
    pub wavelengths: f64,
    /// Effective per-wavelength Gbps (path-weighted average; falls back to
    /// the best path's rate when nothing was restored).
    pub gbps_per_wavelength: f64,
}

impl LinkRestoration {
    /// Fractional restorable capacity in Gbps.
    pub fn restored_gbps(&self) -> f64 {
        self.wavelengths * self.gbps_per_wavelength
    }
}

/// The outcome of the relaxed RWA for one fiber-cut scenario.
#[derive(Debug, Clone)]
pub struct RwaSolution {
    /// One entry per failed IP link, in [`OpticalNetwork::affected_lightpaths`] order.
    pub links: Vec<LinkRestoration>,
    /// Total fractional restored wavelengths.
    pub total_wavelengths: f64,
}

impl RwaSolution {
    /// Restoration for a specific lightpath, if it was affected.
    pub fn for_lightpath(&self, id: LightpathId) -> Option<&LinkRestoration> {
        self.links.iter().find(|l| l.lightpath == id)
    }
}

/// Per-wavelength datarate usable by lightpath `lp` on a path of the given
/// length, or `None` if no modulation reaches.
fn usable_gbps(cfg: &RwaConfig, current_gbps: f64, length_km: f64) -> Option<f64> {
    if cfg.modulation.supports_without_change(current_gbps, length_km) {
        Some(current_gbps)
    } else if cfg.allow_modulation_change {
        cfg.modulation.max_gbps_for_length(length_km).map(|g| g.min(current_gbps))
    } else {
        None
    }
}

/// Computes candidate surrogate paths for every lightpath affected by `cut`.
fn candidate_paths(
    net: &OpticalNetwork,
    cut: &[FiberId],
    cfg: &RwaConfig,
) -> Vec<(LightpathId, Vec<FiberPath>, Vec<f64>)> {
    net.affected_lightpaths(cut)
        .into_iter()
        .map(|id| {
            let lp = net.lightpath(id);
            let reach_cap = if cfg.allow_modulation_change {
                cfg.modulation.max_reach_km()
            } else {
                cfg.modulation
                    .reach_for_gbps(lp.gbps_per_wavelength)
                    .unwrap_or_else(|| cfg.modulation.max_reach_km())
            };
            let paths = k_shortest_paths(net, lp.src, lp.dst, cfg.k_paths, cut, reach_cap);
            let mut kept = Vec::new();
            let mut gbps = Vec::new();
            for p in paths {
                if let Some(g) = usable_gbps(cfg, lp.gbps_per_wavelength, p.length_km) {
                    kept.push(p);
                    gbps.push(g);
                }
            }
            (id, kept, gbps)
        })
        .collect()
}

/// The relaxed wavelength-assignment LP for one cut, before solving.
///
/// Produced by [`build_relaxed`]; solve [`RelaxedRwaLp::model`] with any
/// backend and feed the result to [`RelaxedRwaLp::extract`]. Splitting
/// build from solve lets [`solve_relaxed_batch`] submit a whole shard of
/// scenario LPs as one [`arrow_lp::solve_batch`] call.
#[derive(Debug)]
pub struct RelaxedRwaLp {
    /// The assembled LP (maximization).
    pub model: Model,
    /// `(lightpath, candidate paths, per-wavelength Gbps)` per affected link.
    cands: Vec<(LightpathId, Vec<FiberPath>, Vec<f64>)>,
    /// `slot_vars[e][k]` = `(slot, var)` pairs for link `e`, path `k`.
    slot_vars: Vec<Vec<Vec<(usize, arrow_lp::VarId)>>>,
    /// Constraint (17) rows, one per affected link that got any variable
    /// (`gamma_e{e}` in row order). Patching their RHS re-caps the lost
    /// wavelength count without touching the LP structure.
    gamma_rows: Vec<arrow_lp::ConId>,
}

impl RelaxedRwaLp {
    /// Constraint (17) `gamma_e` rows, in emission order.
    pub fn gamma_rows(&self) -> &[arrow_lp::ConId] {
        &self.gamma_rows
    }
}

/// Builds the relaxed wavelength-assignment LP (Appendix A.2, constraints
/// 14–17 with ξ relaxed to `[0, 1]`) without solving it.
pub fn build_relaxed(net: &OpticalNetwork, cut: &[FiberId], cfg: &RwaConfig) -> RelaxedRwaLp {
    let masks = net.restoration_spectrum(cut);
    let cands = candidate_paths(net, cut, cfg);
    let mut model = Model::new();
    // var_index[(link_idx, path_idx)] -> per-slot variables (slot, VarId)
    let mut slot_vars: Vec<Vec<Vec<(usize, arrow_lp::VarId)>>> = Vec::new();
    // Per (fiber, slot): variables that would occupy it. BTreeMap, not
    // HashMap: constraint (14) rows are emitted by iterating this map, and
    // the LP's resolution of degenerate ties follows row order — hash-seed
    // iteration order would make solutions differ per process and per
    // worker thread, breaking the offline stage's determinism contract.
    use std::collections::BTreeMap;
    let mut usage: BTreeMap<(usize, usize), Vec<arrow_lp::VarId>> = BTreeMap::new();

    for (e, (id, paths, _)) in cands.iter().enumerate() {
        let lp = net.lightpath(*id);
        let mut per_path = Vec::new();
        for (k, path) in paths.iter().enumerate() {
            let mut vars = Vec::new();
            for w in 0..net.num_slots() {
                if !cfg.allow_retuning && !lp.slots.contains(&w) {
                    continue;
                }
                // Wavelength continuity: slot must be free on every fiber.
                if path.fibers.iter().any(|&f| masks[f.0].is_occupied(w)) {
                    continue;
                }
                let v = model.add_var(0.0, 1.0, format!("xi_e{e}_k{k}_w{w}"));
                vars.push((w, v));
                for &f in &path.fibers {
                    usage.entry((f.0, w)).or_default().push(v);
                }
            }
            per_path.push(vars);
        }
        slot_vars.push(per_path);
    }
    // Constraint (14): each free slot on each fiber used at most once.
    // Rows with a single variable are implied by the [0, 1] bound — skip.
    for ((f, w), vars) in usage.iter() {
        if vars.len() >= 2 {
            model.add_con(
                LinExpr::sum_vars(vars.iter().copied()),
                Sense::Le,
                1.0,
                format!("slot_f{f}_w{w}"),
            );
        }
    }
    // Constraint (17): restored wavelengths per link ≤ lost wavelengths.
    let mut gamma_rows = Vec::new();
    for (e, (id, _, _)) in cands.iter().enumerate() {
        let gamma = net.lightpath(*id).wavelength_count() as f64;
        let all: Vec<_> = slot_vars[e].iter().flatten().map(|&(_, v)| v).collect();
        if !all.is_empty() {
            gamma_rows.push(model.add_con(
                LinExpr::sum_vars(all),
                Sense::Le,
                gamma,
                format!("gamma_e{e}"),
            ));
        }
    }
    // Objective: the paper maximizes the restored wavelength count
    // Σ_e Σ_k λ_e^k; with per-path modulations a wavelength restored on a
    // short 400G-capable path is worth more than one forced onto a long
    // 100G path, so each wavelength is weighted by its path's datarate
    // (pure count would be indifferent and could pick low-rate paths).
    let mut obj = LinExpr::new();
    for (e, (_, _, gbps)) in cands.iter().enumerate() {
        for (k, vars) in slot_vars[e].iter().enumerate() {
            for &(_, v) in vars {
                obj.add_term(v, gbps[k].max(1.0));
            }
        }
    }
    model.set_objective(obj, Objective::Maximize);
    RelaxedRwaLp { model, cands, slot_vars, gamma_rows }
}

impl RelaxedRwaLp {
    /// Interprets an LP solution of [`RelaxedRwaLp::model`] as fractional
    /// per-link restorations.
    pub fn extract(self, net: &OpticalNetwork, sol: &arrow_lp::Solution) -> RwaSolution {
        let mut links = Vec::new();
        let mut total = 0.0;
        for (e, (id, paths, gbps)) in self.cands.into_iter().enumerate() {
            let per_path_wavelengths: Vec<f64> = self.slot_vars[e]
                .iter()
                .map(|vars| vars.iter().map(|&(_, v)| sol.value(v).clamp(0.0, 1.0)).sum())
                .collect();
            let wavelengths: f64 = per_path_wavelengths.iter().sum();
            let gbps_per_wavelength = if wavelengths > 1e-9 {
                per_path_wavelengths.iter().zip(gbps.iter()).map(|(l, g)| l * g).sum::<f64>()
                    / wavelengths
            } else {
                gbps.iter().copied().fold(0.0, f64::max)
            };
            total += wavelengths;
            links.push(LinkRestoration {
                lightpath: id,
                lost_wavelengths: net.lightpath(id).wavelength_count(),
                paths,
                path_gbps: gbps,
                per_path_wavelengths,
                wavelengths,
                gbps_per_wavelength,
            });
        }
        RwaSolution { links, total_wavelengths: total }
    }
}

/// Solves the relaxed wavelength-assignment LP for one cut.
pub fn solve_relaxed(net: &OpticalNetwork, cut: &[FiberId], cfg: &RwaConfig) -> RwaSolution {
    let lp = build_relaxed(net, cut, cfg);
    let sol = arrow_lp::solve(&lp.model, &cfg.solver);
    lp.extract(net, &sol)
}

/// Solves the relaxed RWA for a whole shard of cut scenarios as one
/// [`arrow_lp::solve_batch`] call.
///
/// Structurally identical scenario LPs share one multi-RHS panel; the rest
/// solve sequentially inside the batch. Per-scenario results are bitwise
/// identical to calling [`solve_relaxed`] on each cut (the batch layer's
/// contract), so offline ticket digests do not depend on the batching.
pub fn solve_relaxed_batch(
    net: &OpticalNetwork,
    cuts: &[&[FiberId]],
    cfg: &RwaConfig,
) -> Vec<RwaSolution> {
    let lps: Vec<RelaxedRwaLp> = cuts.iter().map(|cut| build_relaxed(net, cut, cfg)).collect();
    let models: Vec<Model> = lps.iter().map(|lp| lp.model.clone()).collect();
    let sols = arrow_lp::solve_batch(&models, &cfg.solver);
    lps.into_iter().zip(&sols).map(|(lp, sol)| lp.extract(net, sol)).collect()
}

/// An exact (integral) wavelength assignment for one failed link.
#[derive(Debug, Clone)]
pub struct ExactAssignment {
    /// Which lightpath this restores.
    pub lightpath: LightpathId,
    /// `(path, slots assigned on that path)` pairs.
    pub routes: Vec<(FiberPath, Vec<usize>)>,
    /// Per-wavelength Gbps on each route (parallel to `routes`).
    pub route_gbps: Vec<f64>,
}

impl ExactAssignment {
    /// Number of wavelengths restored.
    pub fn wavelengths(&self) -> usize {
        self.routes.iter().map(|(_, s)| s.len()).sum()
    }

    /// Restored capacity in Gbps.
    pub fn restored_gbps(&self) -> f64 {
        self.routes
            .iter()
            .zip(self.route_gbps.iter())
            .map(|((_, slots), g)| slots.len() as f64 * g)
            .sum()
    }
}

/// Greedy first-fit exact assignment.
///
/// `targets` caps how many wavelengths each affected link should restore
/// (`None` = as many as were lost). Links are processed in the given order;
/// slots are assigned first-fit respecting continuity. Returns one
/// assignment per affected link (possibly restoring fewer than requested).
pub fn greedy_assign(
    net: &OpticalNetwork,
    cut: &[FiberId],
    cfg: &RwaConfig,
    targets: Option<&[(LightpathId, usize)]>,
) -> Vec<ExactAssignment> {
    let mut masks: Vec<SpectrumMask> = net.restoration_spectrum(cut);
    let cands = candidate_paths(net, cut, cfg);
    let mut out = Vec::new();
    for (id, paths, gbps) in cands {
        let lp = net.lightpath(id);
        let want = targets
            .and_then(|t| t.iter().find(|(tid, _)| *tid == id).map(|&(_, n)| n))
            .unwrap_or(lp.wavelength_count())
            .min(lp.wavelength_count());
        let mut assigned = 0usize;
        let mut routes: Vec<(FiberPath, Vec<usize>)> = Vec::new();
        let mut route_gbps = Vec::new();
        for (k, path) in paths.iter().enumerate() {
            if assigned >= want {
                break;
            }
            let mut slots = Vec::new();
            // Prefer original slots first (no retuning latency), then scan.
            let original_first: Vec<usize> = if cfg.allow_retuning {
                let mut order: Vec<usize> = lp.slots.clone();
                order.extend((0..net.num_slots()).filter(|w| !lp.slots.contains(w)));
                order
            } else {
                lp.slots.clone()
            };
            for w in original_first {
                if assigned >= want {
                    break;
                }
                if path.fibers.iter().all(|&f| masks[f.0].is_free(w)) {
                    for &f in &path.fibers {
                        masks[f.0].occupy(w);
                    }
                    slots.push(w);
                    assigned += 1;
                }
            }
            if !slots.is_empty() {
                routes.push((path.clone(), slots));
                route_gbps.push(gbps[k]);
            }
        }
        out.push(ExactAssignment { lightpath: id, routes, route_gbps });
    }
    out
}

/// Checks whether per-link restoration targets are simultaneously
/// realizable in the optical domain (the LotteryTicket feasibility filter).
///
/// Conservative: links are attempted in descending target order with greedy
/// first-fit; a `true` answer is always realizable, a `false` answer may
/// occasionally reject a realizable ticket.
pub fn is_feasible(
    net: &OpticalNetwork,
    cut: &[FiberId],
    cfg: &RwaConfig,
    targets: &[(LightpathId, usize)],
) -> bool {
    let mut ordered: Vec<(LightpathId, usize)> = targets.to_vec();
    ordered.sort_by_key(|&(_, want)| std::cmp::Reverse(want));
    let assignments = greedy_assign(net, cut, cfg, Some(&ordered));
    targets.iter().all(|&(id, want)| {
        assignments.iter().find(|a| a.lightpath == id).is_some_and(|a| a.wavelengths() >= want)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Lightpath;

    /// The Fig. 7 setup: B--C direct fiber carrying two IP links (4 + 8
    /// wavelengths), plus a top path (B-X-C) with 3 free slots end-to-end
    /// and a bottom path (B-Y-C) with 2 free slots end-to-end.
    fn fig7() -> (OpticalNetwork, FiberId, LightpathId, LightpathId) {
        let mut net = OpticalNetwork::new(16);
        let b = net.add_roadm();
        let c = net.add_roadm();
        let x = net.add_roadm();
        let y = net.add_roadm();
        let f_bc = net.add_fiber(b, c, 100.0).unwrap();
        let f_bx = net.add_fiber(b, x, 100.0).unwrap();
        let f_xc = net.add_fiber(x, c, 100.0).unwrap();
        let f_by = net.add_fiber(b, y, 100.0).unwrap();
        let f_yc = net.add_fiber(y, c, 100.0).unwrap();
        // Failing links on the direct fiber.
        let ip1 = net
            .provision(Lightpath {
                src: b,
                dst: c,
                path: vec![f_bc],
                slots: vec![0, 1, 2, 3],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        let ip2 = net
            .provision(Lightpath {
                src: b,
                dst: c,
                path: vec![f_bc],
                slots: vec![4, 5, 6, 7, 8, 9, 10, 11],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        // Background traffic leaves 3 free slots on the top path and 2 on
        // the bottom path (occupy the rest end-to-end).
        for w in 3..16 {
            net.provision(Lightpath {
                src: b,
                dst: x,
                path: vec![f_bx],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
            net.provision(Lightpath {
                src: x,
                dst: c,
                path: vec![f_xc],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        }
        for w in 2..16 {
            net.provision(Lightpath {
                src: b,
                dst: y,
                path: vec![f_by],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
            net.provision(Lightpath {
                src: y,
                dst: c,
                path: vec![f_yc],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        }
        (net, f_bc, ip1, ip2)
    }

    #[test]
    fn relaxed_rwa_restores_five_of_twelve() {
        let (net, f_bc, _, _) = fig7();
        let sol = solve_relaxed(&net, &[f_bc], &RwaConfig::default());
        // Top path has 3 free slots, bottom has 2 => 5 restorable total.
        assert!(
            (sol.total_wavelengths - 5.0).abs() < 1e-4,
            "restored {} wavelengths",
            sol.total_wavelengths
        );
        // No link exceeds its lost wavelength count.
        for l in &sol.links {
            assert!(l.wavelengths <= l.lost_wavelengths as f64 + 1e-6);
        }
    }

    #[test]
    fn batched_rwa_matches_sequential_and_handles_empty_cut() {
        let (net, f_bc, _, _) = fig7();
        let cfg = RwaConfig::default();
        // Lane 0 has zero cut links (an empty LP); lanes 1 and 2 repeat the
        // same cut, so they share structure and exercise lane grouping.
        let cut = [f_bc];
        let cuts: [&[FiberId]; 3] = [&[], &cut, &cut];
        let batched = solve_relaxed_batch(&net, &cuts, &cfg);
        assert_eq!(batched.len(), 3);
        assert!(batched[0].links.is_empty());
        assert_eq!(batched[0].total_wavelengths, 0.0);
        for b in &batched[1..] {
            let seq = solve_relaxed(&net, &cut, &cfg);
            assert_eq!(seq.links.len(), b.links.len());
            assert_eq!(seq.total_wavelengths.to_bits(), b.total_wavelengths.to_bits());
            for (ls, lb) in seq.links.iter().zip(&b.links) {
                assert_eq!(ls.lightpath, lb.lightpath);
                for (a, c) in ls.per_path_wavelengths.iter().zip(&lb.per_path_wavelengths) {
                    assert_eq!(a.to_bits(), c.to_bits());
                }
            }
        }
    }

    #[test]
    fn gamma_rows_cover_links_with_candidates() {
        let (net, f_bc, _, _) = fig7();
        let lp = build_relaxed(&net, &[f_bc], &RwaConfig::default());
        // Both affected links have candidate paths, so both get a (17) row.
        assert_eq!(lp.gamma_rows().len(), 2);
    }

    #[test]
    fn greedy_assignment_is_integral_and_consistent() {
        let (net, f_bc, _, _) = fig7();
        let assigns = greedy_assign(&net, &[f_bc], &RwaConfig::default(), None);
        let total: usize = assigns.iter().map(|a| a.wavelengths()).sum();
        assert_eq!(total, 5);
        // No slot is double-assigned on any fiber.
        let mut used: std::collections::HashSet<(usize, usize)> = Default::default();
        for a in &assigns {
            for (path, slots) in &a.routes {
                for &f in &path.fibers {
                    for &w in slots {
                        assert!(used.insert((f.0, w)), "fiber {f:?} slot {w} double used");
                    }
                }
            }
        }
    }

    #[test]
    fn feasibility_check_accepts_candidates_and_rejects_overask() {
        let (net, f_bc, ip1, ip2) = fig7();
        let cfg = RwaConfig::default();
        // Fig. 7 candidate 2: (1 wavelength for IP1, 4 for IP2).
        assert!(is_feasible(&net, &[f_bc], &cfg, &[(ip1, 1), (ip2, 4)]));
        // Candidate 1: (2, 3).
        assert!(is_feasible(&net, &[f_bc], &cfg, &[(ip1, 2), (ip2, 3)]));
        // Asking for six total wavelengths cannot work (only 5 free e2e).
        assert!(!is_feasible(&net, &[f_bc], &cfg, &[(ip1, 2), (ip2, 4)]));
    }

    #[test]
    fn no_retuning_restricts_to_original_slots() {
        let (net, f_bc, _, _) = fig7();
        let cfg = RwaConfig { allow_retuning: false, ..Default::default() };
        let sol = solve_relaxed(&net, &[f_bc], &cfg);
        // Free slots are 0..3 (top) and 0..2 (bottom); IP1 owns slots 0-3 so
        // it can restore, IP2 owns 4-11 which are occupied on surrogates.
        let by_id: Vec<f64> = sol.links.iter().map(|l| l.wavelengths).collect();
        assert!(by_id[0] > 0.0, "IP1 should restore without retuning");
        assert!(by_id[1] < 1e-6, "IP2 cannot restore without retuning");
    }

    #[test]
    fn disconnected_link_restores_nothing() {
        let mut net = OpticalNetwork::new(4);
        let a = net.add_roadm();
        let b = net.add_roadm();
        let f = net.add_fiber(a, b, 100.0).unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f],
            slots: vec![0],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        let sol = solve_relaxed(&net, &[f], &RwaConfig::default());
        assert_eq!(sol.links.len(), 1);
        assert_eq!(sol.links[0].wavelengths, 0.0);
        assert!(sol.links[0].paths.is_empty());
    }

    #[test]
    fn modulation_reach_limits_paths() {
        // Direct 100 km fiber cut; only surrogate is 6,000 km — beyond all
        // modulations, so nothing restores even with modulation change.
        let mut net = OpticalNetwork::new(4);
        let a = net.add_roadm();
        let b = net.add_roadm();
        let c = net.add_roadm();
        let f_ab = net.add_fiber(a, b, 100.0).unwrap();
        net.add_fiber(a, c, 3000.0).unwrap();
        net.add_fiber(c, b, 3000.0).unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f_ab],
            slots: vec![0],
            gbps_per_wavelength: 400.0,
        })
        .unwrap();
        let strict = solve_relaxed(&net, &[f_ab], &RwaConfig::default());
        assert_eq!(strict.links[0].paths.len(), 0);
        let relaxed_cfg = RwaConfig { allow_modulation_change: true, ..Default::default() };
        let relaxed = solve_relaxed(&net, &[f_ab], &relaxed_cfg);
        // 6,000 km exceeds even the 100G reach (5,000 km): still nothing.
        assert_eq!(relaxed.links[0].paths.len(), 0);
    }

    #[test]
    fn modulation_change_enables_longer_surrogates() {
        // 400G on 900 km primary; surrogate is 2,000 km => needs 200G.
        let mut net = OpticalNetwork::new(4);
        let a = net.add_roadm();
        let b = net.add_roadm();
        let c = net.add_roadm();
        let f_ab = net.add_fiber(a, b, 900.0).unwrap();
        net.add_fiber(a, c, 1000.0).unwrap();
        net.add_fiber(c, b, 1000.0).unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f_ab],
            slots: vec![0, 1],
            gbps_per_wavelength: 400.0,
        })
        .unwrap();
        let strict = solve_relaxed(&net, &[f_ab], &RwaConfig::default());
        assert_eq!(strict.total_wavelengths, 0.0);
        let cfg = RwaConfig { allow_modulation_change: true, ..Default::default() };
        let sol = solve_relaxed(&net, &[f_ab], &cfg);
        assert!((sol.total_wavelengths - 2.0).abs() < 1e-6);
        assert!((sol.links[0].gbps_per_wavelength - 200.0).abs() < 1e-6);
    }
}
