//! Restoration analyses over a provisioned optical network.
//!
//! Reproduces the measurement methodology of §2.3 and Appendices A.1/A.6:
//! the per-fiber *restoration ratio* `U_φ = W'_φ / W_φ` (Fig. 6), the
//! restoration-path length inflation relative to primary paths (Fig. 17),
//! and the count of ROADMs that must be reconfigured per cut (Fig. 19).

use crate::graph::{FiberId, OpticalNetwork, RoadmId};
use crate::rwa::{solve_relaxed, RwaConfig};

/// The restoration ratio of one fiber after a hypothetical cut.
#[derive(Debug, Clone)]
pub struct RestorationRatio {
    /// The cut fiber.
    pub fiber: FiberId,
    /// Provisioned capacity riding the fiber before the cut (Gbps), `W_φ`.
    pub provisioned_gbps: f64,
    /// Restorable capacity after the cut (Gbps), `W'_φ`.
    pub restorable_gbps: f64,
}

impl RestorationRatio {
    /// `U_φ = W'_φ / W_φ` (1.0 when the fiber carried nothing).
    pub fn ratio(&self) -> f64 {
        if self.provisioned_gbps <= 0.0 {
            1.0
        } else {
            (self.restorable_gbps / self.provisioned_gbps).min(1.0)
        }
    }

    /// Fully restorable? (Within first-order solver tolerance: the RWA
    /// relaxation on large grids is solved to a relative KKT tolerance, so
    /// "full" means ≥ 99.9% of the lost capacity.)
    pub fn is_full(&self) -> bool {
        self.ratio() >= 0.999
    }

    /// Not restorable at all (and capacity was actually lost)?
    pub fn is_none(&self) -> bool {
        self.provisioned_gbps > 0.0 && self.restorable_gbps <= 1e-6
    }
}

/// Simulates every single-fiber-cut scenario and computes each fiber's
/// restoration ratio (the Fig. 6 methodology). Fibers carrying no
/// lightpaths are skipped.
pub fn all_single_cut_ratios(net: &OpticalNetwork, cfg: &RwaConfig) -> Vec<RestorationRatio> {
    let provisioned = net.provisioned_gbps_per_fiber();
    (0..net.num_fibers())
        .filter(|&f| provisioned[f] > 0.0)
        .map(|f| {
            let cut = [FiberId(f)];
            let sol = solve_relaxed(net, &cut, cfg);
            // W'_φ counts only capacity of lightpaths that rode this fiber.
            let restorable: f64 = sol.links.iter().map(|l| l.restored_gbps()).sum();
            RestorationRatio {
                fiber: FiberId(f),
                provisioned_gbps: provisioned[f],
                restorable_gbps: restorable.min(provisioned[f]),
            }
        })
        .collect()
}

/// Path-inflation record for one restored IP link (Appendix A.1).
#[derive(Debug, Clone)]
pub struct PathInflation {
    /// Primary (pre-cut) fiber path length in km.
    pub primary_km: f64,
    /// Shortest restoration path length in km.
    pub restoration_km: f64,
}

impl PathInflation {
    /// `restoration length / primary length` — Fig. 17's inflation ratio.
    pub fn ratio(&self) -> f64 {
        if self.primary_km <= 0.0 {
            1.0
        } else {
            self.restoration_km / self.primary_km
        }
    }
}

/// Computes the restoration-path inflation for every IP link affected by
/// every single fiber cut. Links that cannot be restored are skipped (they
/// have no restoration path to measure).
pub fn path_inflation_analysis(net: &OpticalNetwork, cfg: &RwaConfig) -> Vec<PathInflation> {
    let mut out = Vec::new();
    for f in 0..net.num_fibers() {
        let cut = [FiberId(f)];
        let affected = net.affected_lightpaths(&cut);
        if affected.is_empty() {
            continue;
        }
        let sol = solve_relaxed(net, &cut, cfg);
        for link in &sol.links {
            if link.paths.is_empty() || link.wavelengths <= 1e-9 {
                continue;
            }
            let primary_km = net.path_length_km(&net.lightpath(link.lightpath).path);
            // Weight by restored wavelengths: report the dominant path.
            // total_cmp: the relaxation can in principle emit NaN weights
            // on degenerate inputs, and partial_cmp().unwrap() would
            // panic the whole analysis instead of skipping the path.
            let best = link
                .per_path_wavelengths
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.push(PathInflation { primary_km, restoration_km: link.paths[best].length_km });
        }
    }
    out
}

/// ROADM reconfiguration workload for one fiber cut (Appendix A.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoadmReconfigCount {
    /// Add/drop ROADMs: the source/destination sites of failed lightpaths.
    pub add_drop: usize,
    /// Intermediate ROADMs: pass-through sites on the surrogate paths.
    pub intermediate: usize,
}

/// Counts the distinct ROADMs that must be reconfigured to restore the
/// lightpaths affected by cutting `fiber` (Fig. 19's methodology).
pub fn roadm_reconfig_count(
    net: &OpticalNetwork,
    fiber: FiberId,
    cfg: &RwaConfig,
) -> RoadmReconfigCount {
    use std::collections::BTreeSet;
    let cut = [fiber];
    let sol = solve_relaxed(net, &cut, cfg);
    let mut add_drop: BTreeSet<RoadmId> = BTreeSet::new();
    let mut intermediate: BTreeSet<RoadmId> = BTreeSet::new();
    for link in &sol.links {
        if link.wavelengths <= 1e-9 {
            continue;
        }
        let lp = net.lightpath(link.lightpath);
        add_drop.insert(lp.src);
        add_drop.insert(lp.dst);
        for (k, path) in link.paths.iter().enumerate() {
            if link.per_path_wavelengths[k] <= 1e-9 {
                continue;
            }
            // Walk the path collecting interior nodes.
            let mut at = lp.src;
            for (i, &f) in path.fibers.iter().enumerate() {
                at = net.fiber(f).other_end(at);
                if i + 1 < path.fibers.len() {
                    intermediate.insert(at);
                }
            }
        }
    }
    // A site acting as add/drop dominates its intermediate role.
    let inter = intermediate.difference(&add_drop).count();
    RoadmReconfigCount { add_drop: add_drop.len(), intermediate: inter }
}

/// Convenience: empirical CDF helper used by the figure benches.
///
/// Returns `(value, fraction ≤ value)` pairs over the sorted inputs.
pub fn empirical_cdf(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    debug_assert!(values.iter().all(|v| v.is_finite()), "empirical_cdf expects finite samples");
    values.sort_by(f64::total_cmp);
    let n = values.len().max(1) as f64;
    values.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Lightpath;

    /// Square network: direct fiber A-B carrying 4 λ; detour A-C-B with
    /// room for only 2 λ end-to-end.
    fn partial_net() -> (OpticalNetwork, FiberId) {
        let mut net = OpticalNetwork::new(4);
        let a = net.add_roadm();
        let b = net.add_roadm();
        let c = net.add_roadm();
        let f_ab = net.add_fiber(a, b, 100.0).unwrap();
        let f_ac = net.add_fiber(a, c, 100.0).unwrap();
        let f_cb = net.add_fiber(c, b, 100.0).unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f_ab],
            slots: vec![0, 1, 2, 3],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        // Occupy slots 0,1 on the detour, leaving 2 free slots.
        net.provision(Lightpath {
            src: a,
            dst: c,
            path: vec![f_ac],
            slots: vec![0, 1],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        net.provision(Lightpath {
            src: c,
            dst: b,
            path: vec![f_cb],
            slots: vec![0, 1],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        (net, f_ab)
    }

    #[test]
    fn partial_restoration_ratio() {
        let (net, f_ab) = partial_net();
        let ratios = all_single_cut_ratios(&net, &RwaConfig::default());
        let r = ratios.iter().find(|r| r.fiber == f_ab).unwrap();
        assert_eq!(r.provisioned_gbps, 400.0);
        assert!((r.restorable_gbps - 200.0).abs() < 1e-4, "got {}", r.restorable_gbps);
        assert!((r.ratio() - 0.5).abs() < 1e-6);
        assert!(!r.is_full() && !r.is_none());
    }

    #[test]
    fn path_inflation_measures_detour() {
        let (net, _) = partial_net();
        let infl = path_inflation_analysis(&net, &RwaConfig::default());
        // The A-B link's restoration path is 200 km vs 100 km primary.
        let main = infl.iter().find(|p| p.primary_km == 100.0 && p.restoration_km == 200.0);
        assert!(main.is_some(), "inflations: {infl:?}");
        assert!((main.unwrap().ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn roadm_counts_fig19() {
        let (net, f_ab) = partial_net();
        let c = roadm_reconfig_count(&net, f_ab, &RwaConfig::default());
        // Add/drop at A and B; C is the single intermediate hop.
        assert_eq!(c, RoadmReconfigCount { add_drop: 2, intermediate: 1 });
    }

    #[test]
    fn cdf_helper_is_monotone() {
        let cdf = empirical_cdf(vec![3.0, 1.0, 2.0]);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
    }

    #[test]
    fn unrestorable_fiber_counts_as_zero_ratio() {
        let mut net = OpticalNetwork::new(4);
        let a = net.add_roadm();
        let b = net.add_roadm();
        let f = net.add_fiber(a, b, 100.0).unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f],
            slots: vec![0],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        let ratios = all_single_cut_ratios(&net, &RwaConfig::default());
        assert_eq!(ratios.len(), 1);
        assert!(ratios[0].is_none());
        assert_eq!(ratios[0].ratio(), 0.0);
    }
}
