//! Shortest and k-shortest fiber paths.
//!
//! Surrogate restoration paths are computed with Yen's algorithm [86] over
//! the fiber graph, weighting edges by physical length (which is what
//! bounds modulation reach, Appendix A.2 "Routing the restored
//! wavelengths"). Cut fibers are excluded from the search.

use crate::graph::{FiberId, OpticalNetwork, RoadmId};
use std::collections::BinaryHeap;

/// A loop-free fiber path with its physical length.
#[derive(Debug, Clone, PartialEq)]
pub struct FiberPath {
    /// Fibers in order from source to destination.
    pub fibers: Vec<FiberId>,
    /// Total physical length in km.
    pub length_km: f64,
}

/// Max-heap entry flipped for Dijkstra's min-heap behaviour.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest distance pops first. total_cmp keeps the
        // comparator total even if a degenerate graph yields NaN weights.
        other.dist.total_cmp(&self.dist)
    }
}

/// Shortest path from `src` to `dst` by fiber length, avoiding the fibers in
/// `banned` and the ROADMs in `banned_nodes`. Returns `None` if disconnected.
pub fn shortest_path(
    net: &OpticalNetwork,
    src: RoadmId,
    dst: RoadmId,
    banned: &[FiberId],
    banned_nodes: &[RoadmId],
) -> Option<FiberPath> {
    let n = net.num_roadms();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(usize, FiberId)>> = vec![None; n];
    let mut done = vec![false; n];
    if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    dist[src.0] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { dist: 0.0, node: src.0 });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if done[node] {
            continue;
        }
        done[node] = true;
        if node == dst.0 {
            break;
        }
        for &fid in net.incident_fibers(RoadmId(node)) {
            if banned.contains(&fid) {
                continue;
            }
            let fiber = net.fiber(fid);
            let next = fiber.other_end(RoadmId(node)).0;
            if banned_nodes.contains(&RoadmId(next)) || done[next] {
                continue;
            }
            let nd = d + fiber.length_km;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = Some((node, fid));
                heap.push(HeapEntry { dist: nd, node: next });
            }
        }
    }
    if !dist[dst.0].is_finite() {
        return None;
    }
    let mut fibers = Vec::new();
    let mut at = dst.0;
    while at != src.0 {
        // Finite distance implies an unbroken predecessor chain to src.
        let (p, f) = prev[at]?;
        fibers.push(f);
        at = p;
    }
    fibers.reverse();
    Some(FiberPath { fibers, length_km: dist[dst.0] })
}

/// ROADMs visited by a fiber path starting at `src`, including endpoints.
fn path_nodes(net: &OpticalNetwork, src: RoadmId, fibers: &[FiberId]) -> Vec<RoadmId> {
    let mut nodes = vec![src];
    let mut at = src;
    for &f in fibers {
        at = net.fiber(f).other_end(at);
        nodes.push(at);
    }
    nodes
}

/// Yen's k-shortest loop-free paths from `src` to `dst`, avoiding `banned`
/// fibers, with an optional length cap (`max_length_km`, inclusive).
///
/// Returns up to `k` paths sorted by ascending length; fewer if the graph
/// does not contain that many distinct paths within the cap.
pub fn k_shortest_paths(
    net: &OpticalNetwork,
    src: RoadmId,
    dst: RoadmId,
    k: usize,
    banned: &[FiberId],
    max_length_km: f64,
) -> Vec<FiberPath> {
    let mut accepted: Vec<FiberPath> = Vec::new();
    let Some(first) = shortest_path(net, src, dst, banned, &[]) else {
        return accepted;
    };
    if first.length_km <= max_length_km {
        accepted.push(first);
    } else {
        return accepted;
    }
    let mut candidates: Vec<FiberPath> = Vec::new();
    while accepted.len() < k {
        let Some(last) = accepted.last().cloned() else { break };
        let last_nodes = path_nodes(net, src, &last.fibers);
        // Branch at every spur node of the previous path.
        for spur_idx in 0..last.fibers.len() {
            let spur_node = last_nodes[spur_idx];
            let root = &last.fibers[..spur_idx];
            // Ban edges that would recreate an already-accepted path with
            // the same root.
            let mut edge_ban: Vec<FiberId> = banned.to_vec();
            for p in &accepted {
                if p.fibers.len() > spur_idx && p.fibers[..spur_idx] == *root {
                    edge_ban.push(p.fibers[spur_idx]);
                }
            }
            // Ban root nodes (loop-freedom).
            let node_ban: Vec<RoadmId> = last_nodes[..spur_idx].to_vec();
            if let Some(spur) = shortest_path(net, spur_node, dst, &edge_ban, &node_ban) {
                let mut fibers = root.to_vec();
                fibers.extend_from_slice(&spur.fibers);
                let length_km = net.path_length_km(&fibers);
                let cand = FiberPath { fibers, length_km };
                if length_km <= max_length_km
                    && !accepted.contains(&cand)
                    && !candidates.contains(&cand)
                {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Promote the shortest candidate.
        let Some(best) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.length_km.total_cmp(&b.1.length_km))
            .map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square with a diagonal: A-B (1), B-C (1), C-D (1), D-A (1), A-C (1.5).
    fn square() -> (OpticalNetwork, Vec<RoadmId>, Vec<FiberId>) {
        let mut net = OpticalNetwork::new(8);
        let r = net.add_roadms(4);
        let f = vec![
            net.add_fiber(r[0], r[1], 1.0).unwrap(),
            net.add_fiber(r[1], r[2], 1.0).unwrap(),
            net.add_fiber(r[2], r[3], 1.0).unwrap(),
            net.add_fiber(r[3], r[0], 1.0).unwrap(),
            net.add_fiber(r[0], r[2], 1.5).unwrap(),
        ];
        (net, r, f)
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let (net, r, f) = square();
        let p = shortest_path(&net, r[0], r[2], &[], &[]).unwrap();
        assert_eq!(p.fibers, vec![f[4]]);
        assert_eq!(p.length_km, 1.5);
    }

    #[test]
    fn dijkstra_respects_bans() {
        let (net, r, f) = square();
        let p = shortest_path(&net, r[0], r[2], &[f[4]], &[]).unwrap();
        assert_eq!(p.length_km, 2.0);
        assert_eq!(p.fibers.len(), 2);
    }

    #[test]
    fn dijkstra_reports_disconnection() {
        let (net, r, f) = square();
        // Cut everything incident to r0.
        assert!(shortest_path(&net, r[0], r[2], &[f[0], f[3], f[4]], &[]).is_none());
    }

    #[test]
    fn yen_enumerates_three_paths_in_order() {
        let (net, r, _) = square();
        let paths = k_shortest_paths(&net, r[0], r[2], 5, &[], f64::INFINITY);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].length_km, 1.5); // diagonal
        assert_eq!(paths[1].length_km, 2.0); // via B or D
        assert_eq!(paths[2].length_km, 2.0); // the other one
                                             // All paths are distinct.
        assert_ne!(paths[1].fibers, paths[2].fibers);
    }

    #[test]
    fn yen_applies_length_cap() {
        let (net, r, _) = square();
        let paths = k_shortest_paths(&net, r[0], r[2], 5, &[], 1.6);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].length_km, 1.5);
    }

    #[test]
    fn yen_paths_are_simple() {
        let (net, r, _) = square();
        for p in k_shortest_paths(&net, r[0], r[2], 5, &[], f64::INFINITY) {
            let nodes = path_nodes(&net, r[0], &p.fibers);
            let mut unique = nodes.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), nodes.len(), "loop found in {:?}", p.fibers);
        }
    }

    #[test]
    fn yen_with_banned_fibers() {
        let (net, r, f) = square();
        let paths = k_shortest_paths(&net, r[0], r[2], 5, &[f[4]], f64::INFINITY);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| !p.fibers.contains(&f[4])));
    }
}
