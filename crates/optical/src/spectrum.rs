//! Fiber spectrum occupancy.
//!
//! A fiber's usable band is divided into fixed-width wavelength slots
//! (ITU-T G.694.1 DWDM grid; today's fibers carry 48–96 wavelengths in the
//! C-band depending on channel spacing — paper §4, footnote 7). A
//! [`SpectrumMask`] tracks which slots are occupied by provisioned
//! wavelengths, mirroring the binary `φ.spectrum[w]` vector of Appendix A.2.

use serde::{Deserialize, Serialize};

/// Number of wavelength slots used by default (96-channel DWDM grid).
pub const DEFAULT_SLOTS: usize = 96;

/// Spectral band of a wavelength slot (Appendix A.10: next-generation
/// systems extend the C band with the L band to scale capacity; ARROW's
/// noise loading covers the new band the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Band {
    /// Conventional band (1530–1565 nm) — the first `c_slots` slots.
    C,
    /// Long band (1565–1625 nm) — slots appended by an L-band upgrade.
    L,
}

/// Occupancy bitset over the wavelength slots of one fiber.
///
/// Bit **set** means the slot is **occupied** by a working wavelength; clear
/// means the slot is free (or carrying ASE noise, which is displaceable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpectrumMask {
    words: Vec<u64>,
    num_slots: usize,
}

impl SpectrumMask {
    /// An all-free mask with `num_slots` slots.
    pub fn new(num_slots: usize) -> Self {
        assert!(num_slots > 0, "a fiber needs at least one slot");
        SpectrumMask { words: vec![0; num_slots.div_ceil(64)], num_slots }
    }

    /// Number of slots in the grid.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Whether slot `w` is occupied.
    pub fn is_occupied(&self, w: usize) -> bool {
        assert!(w < self.num_slots, "slot {w} out of range {}", self.num_slots);
        self.words[w / 64] & (1u64 << (w % 64)) != 0
    }

    /// Whether slot `w` is free.
    pub fn is_free(&self, w: usize) -> bool {
        !self.is_occupied(w)
    }

    /// Marks slot `w` occupied. Returns `false` if it already was.
    pub fn occupy(&mut self, w: usize) -> bool {
        if self.is_occupied(w) {
            return false;
        }
        self.words[w / 64] |= 1u64 << (w % 64);
        true
    }

    /// Frees slot `w`. Returns `false` if it was already free.
    pub fn release(&mut self, w: usize) -> bool {
        if self.is_free(w) {
            return false;
        }
        self.words[w / 64] &= !(1u64 << (w % 64));
        true
    }

    /// Number of occupied slots.
    pub fn occupied_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of free slots.
    pub fn free_count(&self) -> usize {
        self.num_slots - self.occupied_count()
    }

    /// Fraction of slots occupied — the paper's *spectrum utilization*
    /// (Fig. 5a).
    pub fn utilization(&self) -> f64 {
        self.occupied_count() as f64 / self.num_slots as f64
    }

    /// Iterates over the indices of free slots, ascending.
    pub fn free_slots(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_slots).filter(move |&w| self.is_free(w))
    }

    /// Iterates over the indices of occupied slots, ascending.
    pub fn occupied_slots(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_slots).filter(move |&w| self.is_occupied(w))
    }

    /// Extends the grid to `new_slots` slots; the appended slots start
    /// free. Used by the Appendix A.10 C+L upgrade. No-op if `new_slots`
    /// is not larger than the current grid.
    pub fn extend_to(&mut self, new_slots: usize) {
        if new_slots <= self.num_slots {
            return;
        }
        self.num_slots = new_slots;
        self.words.resize(new_slots.div_ceil(64), 0);
    }

    /// The slots free in *both* masks — the usable spectrum across two
    /// fibers under the wavelength-continuity constraint (§2.3, Fig. 5b).
    pub fn free_intersection(&self, other: &SpectrumMask) -> SpectrumMask {
        assert_eq!(self.num_slots, other.num_slots, "grids differ");
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a | b) // occupied in either => not usable
            .collect();
        SpectrumMask { words, num_slots: self.num_slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_and_release_roundtrip() {
        let mut m = SpectrumMask::new(96);
        assert!(m.is_free(40));
        assert!(m.occupy(40));
        assert!(!m.occupy(40), "double occupy must report false");
        assert!(m.is_occupied(40));
        assert_eq!(m.occupied_count(), 1);
        assert!(m.release(40));
        assert!(!m.release(40));
        assert_eq!(m.occupied_count(), 0);
    }

    #[test]
    fn counts_and_utilization() {
        let mut m = SpectrumMask::new(10);
        for w in 0..4 {
            m.occupy(w);
        }
        assert_eq!(m.occupied_count(), 4);
        assert_eq!(m.free_count(), 6);
        assert!((m.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn free_slot_iteration() {
        let mut m = SpectrumMask::new(5);
        m.occupy(1);
        m.occupy(3);
        let free: Vec<_> = m.free_slots().collect();
        assert_eq!(free, vec![0, 2, 4]);
        let occ: Vec<_> = m.occupied_slots().collect();
        assert_eq!(occ, vec![1, 3]);
    }

    #[test]
    fn continuity_intersection_mirrors_fig5b() {
        // Three fibers each 75% free can still share only a sliver.
        let mut a = SpectrumMask::new(4);
        let mut b = SpectrumMask::new(4);
        a.occupy(0); // free: 1,2,3
        b.occupy(1); // free: 0,2,3
        let usable = a.free_intersection(&b);
        let free: Vec<_> = usable.free_slots().collect();
        assert_eq!(free, vec![2, 3]);
    }

    #[test]
    fn works_across_word_boundaries() {
        let mut m = SpectrumMask::new(130);
        m.occupy(63);
        m.occupy(64);
        m.occupy(129);
        assert_eq!(m.occupied_count(), 3);
        assert!(m.is_occupied(63) && m.is_occupied(64) && m.is_occupied(129));
        assert!(m.is_free(128));
    }

    #[test]
    fn extend_to_keeps_occupancy_and_adds_free_slots() {
        let mut m = SpectrumMask::new(4);
        m.occupy(1);
        m.extend_to(130);
        assert_eq!(m.num_slots(), 130);
        assert!(m.is_occupied(1));
        assert!(m.is_free(4) && m.is_free(129));
        assert_eq!(m.occupied_count(), 1);
        // Shrinking is a no-op.
        m.extend_to(2);
        assert_eq!(m.num_slots(), 130);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let m = SpectrumMask::new(8);
        let _ = m.is_free(8);
    }
}
