//! WAN availability under demand scaling: ARROW vs the baselines.
//!
//! A laptop-sized cut of the paper's headline experiment (Fig. 13): on the
//! B4 topology, scale demand up and watch how availability degrades for
//! ECMP, FFC-1, TeaVaR, ARROW-Naive, and ARROW. Restoration awareness lets
//! ARROW hold its availability while admitting substantially more demand.
//!
//! Run: `cargo run --release --example wan_availability`

use arrow_wan::prelude::*;

fn main() {
    let wan = b4(17);
    println!("== {} ==", wan.summary());
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 12, ..Default::default() });
    let scenarios = failures.failure_scenarios().to_vec();
    let base = build_instance(
        &wan,
        &tms[0],
        &scenarios,
        &TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
    );
    // Normalize so scale 1.0 = "all demand fits" (§6 demand scaling).
    let norm = normalize_demand_scale(&base);
    println!("normalized demand scale: x{norm:.2} saturates the failure-oblivious LP\n");

    // Offline: LotteryTickets for ARROW; naive single candidates.
    let lottery = LotteryConfig { num_tickets: 10, ..Default::default() };
    let tickets = generate_tickets(&wan, &scenarios, &lottery);
    let naive: Vec<RestorationTicket> =
        scenarios.iter().map(|s| naive_ticket(&wan, s, &lottery.rwa)).collect();

    println!("{:<14} {:>8} {:>12} {:>12}", "scheme", "scale", "throughput", "availability");
    let playback = PlaybackConfig::default();
    for scale in [1.0, 1.5, 2.0, 3.0] {
        let inst = base.scaled(norm * scale);
        let schemes: Vec<Box<dyn TeScheme>> = vec![
            Box::new(Ecmp),
            Box::new(Ffc::k1()),
            Box::new(TeaVar::default()),
            Box::new(ArrowNaive { tickets: naive.clone(), solver: Default::default() }),
            Box::new(Arrow::new(tickets.clone())),
        ];
        for s in schemes {
            let out = s.solve(&inst);
            let avail = availability(&inst, &out, &playback);
            let thr = play_scenario(&inst, &out.alloc, None, None, &playback).satisfaction;
            println!("{:<14} {:>8.2} {:>12.3} {:>12.6}", s.name(), scale, thr, avail);
        }
        println!();
    }
    println!(
        "Reading: at equal availability targets ARROW sustains a larger demand\n\
         scale than failure-aware TE that treats fiber cuts as fatal."
    );
}
