//! Full-pipeline run report through the `arrow-obs` layer.
//!
//! Runs the complete ARROW pipeline on B4 — offline LotteryTicket
//! generation, then a nine-interval diurnal replay through the warm online
//! path — with a `FileSubscriber` installed, and writes:
//!
//! * `trace.jsonl` — every span and event, one JSON record per line
//!   (span ends re-carry their fields plus a `duration_nanos`), and
//! * `metrics.json` — the full metrics-registry snapshot.
//!
//! * `trace.folded` — flamegraph-compatible collapsed stacks, and
//! * `stage_report.json` — the analyzer's per-stage attribution report.
//!
//! While the replay runs, a telemetry exporter serves `/metrics`,
//! `/snapshot.json`, and `/healthz` on an ephemeral localhost port; the
//! example scrapes itself (a curl-equivalent GET over a real socket) and
//! asserts the Prometheus text carries the `epoch_seconds` histogram and
//! the SLO counters the epoch loop feeds.
//!
//! It then prints a per-stage wall-clock breakdown table assembled from
//! the trace and asserts the span tree the CI smoke check relies on:
//! exactly one `offline` span, nine `epoch` spans, and phase-1 / winner
//! selection / phase-2 spans with non-zero durations — plus the analyzer
//! contract: every epoch's critical path descends into `lp.solve`, and
//! ≥50% of epoch wall time is attributed to named child spans.
//!
//! Run: `cargo run --release --example observe_pipeline`

use arrow_wan::obs::analyze::SpanTree;
use arrow_wan::obs::slo::SloConfig;
use arrow_wan::obs::{FanoutSubscriber, FieldValue, FileSubscriber, RecordKind, RingSubscriber};
use arrow_wan::prelude::*;
use std::sync::Arc;

/// The same diurnal curve the online sweep replays (§5).
const DIURNAL: [f64; 9] = [0.60, 0.75, 0.95, 1.10, 1.15, 1.05, 0.90, 0.72, 0.62];

fn main() {
    // Trace to disk for the artifact and to a ring for the in-process
    // breakdown + assertions.
    let file = Arc::new(FileSubscriber::create("trace.jsonl").expect("create trace.jsonl"));
    let ring = Arc::new(RingSubscriber::new(65536));
    arrow_wan::obs::trace::install(Arc::new(FanoutSubscriber::new(vec![
        file.clone(),
        ring.clone(),
    ])));

    // Epoch-deadline SLO: ARROW's five-minute TE epoch (§5) is the default
    // budget; configuring explicitly also resets the rolling window so the
    // counters asserted below start from a known state.
    arrow_wan::obs::slo::configure(SloConfig::default());

    // Serve live telemetry for the whole run: /metrics, /snapshot.json,
    // /healthz on an ephemeral localhost port.
    let mut exporter =
        arrow_wan::obs::export::spawn("127.0.0.1:0").expect("bind telemetry exporter");
    println!("telemetry: http://{}/metrics", exporter.local_addr());

    // Offline stage: parallel ticket generation (emits the `offline` span
    // with one `offline.scenario` span per worker item).
    let wan = b4(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
    let scens = failures.failure_scenarios().to_vec();
    let cfg = ControllerConfig {
        lottery: LotteryConfig { num_tickets: 40, ..Default::default() },
        tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
        ..Default::default()
    };
    println!("== observe_pipeline: {} ==", wan.summary());
    let mut ctl = ArrowController::new(wan, scens, cfg);
    println!("offline: {}", ctl.offline().stats.summary());

    // Online stage: diurnal replay over the warm path (one `epoch` span
    // per interval, each wrapping te.phase1 / te.select / te.phase2).
    let tm = gravity_matrices(&ctl.wan, &TrafficConfig { num_matrices: 1, ..Default::default() })
        [0]
    .scaled(3.0);
    let slo_met_before = arrow_wan::obs::metrics::snapshot().counter("slo.epoch.met");
    for (i, &scale) in DIURNAL.iter().enumerate() {
        let plan = ctl.plan_warm(&tm.scaled(scale)).expect("valid offline state plans cleanly");
        println!(
            "epoch {i}: scale {scale:.2} -> admitted {:.1} Gbps, winners {:?}",
            plan.outcome.output.alloc.total_admitted(),
            plan.outcome.winning
        );
    }

    arrow_wan::obs::trace::uninstall();
    file.flush().expect("flush trace.jsonl");
    let metrics = arrow_wan::obs::metrics::snapshot();
    std::fs::write("metrics.json", metrics.to_json()).expect("write metrics.json");
    println!("\nwrote trace.jsonl + metrics.json");

    // Scrape ourselves over a real socket — the curl-equivalent GET the
    // acceptance criteria name — and assert the exposition carries the
    // epoch histogram and the SLO series the epoch loop just fed.
    let addr = exporter.local_addr();
    let health = arrow_wan::obs::export::http_get(addr, "/healthz").expect("GET /healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "healthz: {health}");
    let scrape = arrow_wan::obs::export::http_get(addr, "/metrics").expect("GET /metrics");
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "metrics: {scrape}");
    assert!(scrape.contains("text/plain; version=0.0.4"), "prometheus content type");
    let body = scrape.split("\r\n\r\n").nth(1).unwrap_or("");
    for needle in [
        "# HELP epoch_seconds ",
        "# TYPE epoch_seconds histogram",
        "epoch_seconds_bucket{le=\"+Inf\"}",
        "epoch_seconds_count",
        "# TYPE slo_epoch_met counter",
        "# TYPE slo_epoch_missed counter",
        "slo_error_budget_burn_rate",
        "slo_epoch_p99_seconds",
    ] {
        assert!(body.contains(needle), "/metrics body is missing {needle:?}");
    }
    exporter.shutdown();
    let slo_met = metrics.counter("slo.epoch.met") - slo_met_before;
    let slo_missed = metrics.counter("slo.epoch.missed");
    println!(
        "scraped /metrics: {} bytes; SLO verdicts this run: {slo_met} met, {slo_missed} missed",
        body.len()
    );
    assert_eq!(slo_met as usize, DIURNAL.len(), "every diurnal epoch beats the five-minute budget");

    // Analyzer: rebuild the span forest from the trace *file* (the same
    // path an offline investigation takes), attribute time, and write the
    // flamegraph + stage report artifacts.
    let trace_text = std::fs::read_to_string("trace.jsonl").expect("read trace.jsonl back");
    let tree = SpanTree::from_jsonl(&trace_text).expect("trace.jsonl parses");
    std::fs::write("trace.folded", tree.collapsed_stacks()).expect("write trace.folded");
    std::fs::write("stage_report.json", tree.stage_report_json()).expect("write stage_report.json");
    println!("wrote trace.folded + stage_report.json");

    let epoch_indices = tree.spans_named("epoch");
    assert_eq!(epoch_indices.len(), DIURNAL.len(), "one epoch tree per interval");
    let mut covered_nanos = 0u64;
    let mut epoch_nanos = 0u64;
    for &e in &epoch_indices {
        let path = tree.critical_path(e);
        let names: Vec<&str> = path.iter().map(|h| h.name.as_str()).collect();
        assert!(
            names.contains(&"lp.solve"),
            "epoch critical path must descend into the LP solve, got {names:?}"
        );
        epoch_nanos += tree.nodes[e].duration_nanos;
        covered_nanos += tree.nodes[e].duration_nanos - tree.self_nanos(e);
    }
    let coverage = covered_nanos as f64 / epoch_nanos.max(1) as f64;
    // The slowest epoch's critical path, hop by hop.
    let slowest = epoch_indices
        .iter()
        .copied()
        .max_by_key(|&e| tree.nodes[e].duration_nanos)
        .expect("nine epochs");
    println!(
        "\ncritical path of slowest epoch ({:.1} ms):",
        tree.nodes[slowest].duration_seconds() * 1e3
    );
    for hop in tree.critical_path(slowest) {
        println!("  {:<12} {:>9.3} ms", hop.name, hop.duration_nanos as f64 / 1e6);
    }
    println!("epoch child-span coverage: {:.1}%", 100.0 * coverage);
    assert!(
        coverage >= 0.5,
        "expected >=50% of epoch wall attributed to named child spans, got {:.1}%",
        100.0 * coverage
    );

    // Per-stage wall-clock breakdown from the trace.
    let records = ring.records();
    println!("\nstage          | spans | total s  | mean ms");
    for stage in
        ["offline", "offline.scenario", "epoch", "te.phase1", "te.select", "te.phase2", "lp.solve"]
    {
        let durations: Vec<f64> = records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd && r.name == stage)
            .filter_map(|r| r.duration_seconds())
            .collect();
        let total: f64 = durations.iter().sum();
        let mean_ms = if durations.is_empty() { 0.0 } else { 1e3 * total / durations.len() as f64 };
        println!("{stage:<14} | {:>5} | {total:>8.3} | {mean_ms:>7.3}", durations.len());
    }

    // Span-tree assertions (the CI smoke check greps trace.jsonl for the
    // same structure).
    let finished = |name: &str| -> Vec<_> {
        records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd && r.name == name)
            .collect::<Vec<_>>()
    };
    assert_eq!(finished("offline").len(), 1, "exactly one offline span");
    let epochs = finished("epoch");
    assert_eq!(epochs.len(), DIURNAL.len(), "one epoch span per diurnal interval");
    assert!(
        epochs.iter().all(|e| e.field("mode").and_then(FieldValue::as_str) == Some("warm")),
        "diurnal replay runs the warm path"
    );
    for phase in ["te.phase1", "te.select", "te.phase2"] {
        let spans = finished(phase);
        assert_eq!(spans.len(), DIURNAL.len(), "one {phase} span per epoch");
        assert!(
            spans.iter().all(|s| s.duration_nanos.unwrap_or(0) > 0),
            "{phase} spans have non-zero durations"
        );
    }
    // Parentage: every te.* span sits inside an epoch span.
    let epoch_ids: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == RecordKind::SpanStart && r.name == "epoch")
        .map(|r| r.span_id)
        .collect();
    assert!(
        records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart && r.name.starts_with("te."))
            .all(|r| r.parent_id.is_some_and(|p| epoch_ids.contains(&p))),
        "te.* spans are children of epoch spans"
    );
    println!(
        "\nOK: span tree covers offline, {} epochs, and all three online phases",
        epochs.len()
    );
}
