//! Full-pipeline run report through the `arrow-obs` layer.
//!
//! Runs the complete ARROW pipeline on B4 — offline LotteryTicket
//! generation, then a nine-interval diurnal replay through the warm online
//! path — with a `FileSubscriber` installed, and writes:
//!
//! * `trace.jsonl` — every span and event, one JSON record per line
//!   (span ends re-carry their fields plus a `duration_nanos`), and
//! * `metrics.json` — the full metrics-registry snapshot.
//!
//! It then prints a per-stage wall-clock breakdown table assembled from
//! the trace and asserts the span tree the CI smoke check relies on:
//! exactly one `offline` span, nine `epoch` spans, and phase-1 / winner
//! selection / phase-2 spans with non-zero durations.
//!
//! Run: `cargo run --release --example observe_pipeline`

use arrow_wan::obs::{FanoutSubscriber, FieldValue, FileSubscriber, RecordKind, RingSubscriber};
use arrow_wan::prelude::*;
use std::sync::Arc;

/// The same diurnal curve the online sweep replays (§5).
const DIURNAL: [f64; 9] = [0.60, 0.75, 0.95, 1.10, 1.15, 1.05, 0.90, 0.72, 0.62];

fn main() {
    // Trace to disk for the artifact and to a ring for the in-process
    // breakdown + assertions.
    let file = Arc::new(FileSubscriber::create("trace.jsonl").expect("create trace.jsonl"));
    let ring = Arc::new(RingSubscriber::new(65536));
    arrow_wan::obs::trace::install(Arc::new(FanoutSubscriber::new(vec![
        file.clone(),
        ring.clone(),
    ])));

    // Offline stage: parallel ticket generation (emits the `offline` span
    // with one `offline.scenario` span per worker item).
    let wan = b4(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
    let scens = failures.failure_scenarios().to_vec();
    let cfg = ControllerConfig {
        lottery: LotteryConfig { num_tickets: 40, ..Default::default() },
        tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
        ..Default::default()
    };
    println!("== observe_pipeline: {} ==", wan.summary());
    let mut ctl = ArrowController::new(wan, scens, cfg);
    println!("offline: {}", ctl.offline().stats.summary());

    // Online stage: diurnal replay over the warm path (one `epoch` span
    // per interval, each wrapping te.phase1 / te.select / te.phase2).
    let tm = gravity_matrices(&ctl.wan, &TrafficConfig { num_matrices: 1, ..Default::default() })
        [0]
    .scaled(3.0);
    for (i, &scale) in DIURNAL.iter().enumerate() {
        let plan = ctl.plan_warm(&tm.scaled(scale)).expect("valid offline state plans cleanly");
        println!(
            "epoch {i}: scale {scale:.2} -> admitted {:.1} Gbps, winners {:?}",
            plan.outcome.output.alloc.total_admitted(),
            plan.outcome.winning
        );
    }

    arrow_wan::obs::trace::uninstall();
    file.flush().expect("flush trace.jsonl");
    let metrics = arrow_wan::obs::metrics::snapshot();
    std::fs::write("metrics.json", metrics.to_json()).expect("write metrics.json");
    println!("\nwrote trace.jsonl + metrics.json");

    // Per-stage wall-clock breakdown from the trace.
    let records = ring.records();
    println!("\nstage          | spans | total s  | mean ms");
    for stage in
        ["offline", "offline.scenario", "epoch", "te.phase1", "te.select", "te.phase2", "lp.solve"]
    {
        let durations: Vec<f64> = records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd && r.name == stage)
            .filter_map(|r| r.duration_seconds())
            .collect();
        let total: f64 = durations.iter().sum();
        let mean_ms = if durations.is_empty() { 0.0 } else { 1e3 * total / durations.len() as f64 };
        println!("{stage:<14} | {:>5} | {total:>8.3} | {mean_ms:>7.3}", durations.len());
    }

    // Span-tree assertions (the CI smoke check greps trace.jsonl for the
    // same structure).
    let finished = |name: &str| -> Vec<_> {
        records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd && r.name == name)
            .collect::<Vec<_>>()
    };
    assert_eq!(finished("offline").len(), 1, "exactly one offline span");
    let epochs = finished("epoch");
    assert_eq!(epochs.len(), DIURNAL.len(), "one epoch span per diurnal interval");
    assert!(
        epochs.iter().all(|e| e.field("mode").and_then(FieldValue::as_str) == Some("warm")),
        "diurnal replay runs the warm path"
    );
    for phase in ["te.phase1", "te.select", "te.phase2"] {
        let spans = finished(phase);
        assert_eq!(spans.len(), DIURNAL.len(), "one {phase} span per epoch");
        assert!(
            spans.iter().all(|s| s.duration_nanos.unwrap_or(0) > 0),
            "{phase} spans have non-zero durations"
        );
    }
    // Parentage: every te.* span sits inside an epoch span.
    let epoch_ids: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == RecordKind::SpanStart && r.name == "epoch")
        .map(|r| r.span_id)
        .collect();
    assert!(
        records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart && r.name.starts_with("te."))
            .all(|r| r.parent_id.is_some_and(|p| epoch_ids.contains(&p))),
        "te.* spans are children of epoch spans"
    );
    println!(
        "\nOK: span tree covers offline, {} epochs, and all three online phases",
        epochs.len()
    );
}
