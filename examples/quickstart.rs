//! Quickstart: partial restoration and why the TE must pick the candidate.
//!
//! Recreates the paper's Fig. 7 walk-through. Two IP links (4 and 8
//! wavelengths) ride the same fiber. When it is cut, the surrogate paths
//! only have room for 5 of the 12 lost wavelengths, so restoration is
//! *partial* and several candidate splits ("LotteryTickets") restore the
//! same total capacity — but with traffic demands of 100 and 400 Gbps,
//! only one candidate maximizes throughput.
//!
//! Run: `cargo run --release --example quickstart`

use arrow_wan::prelude::*;

fn main() {
    // --- Build the Fig. 7 optical network. -------------------------------
    let mut net = OpticalNetwork::new(16);
    let b = net.add_roadm();
    let c = net.add_roadm();
    let x = net.add_roadm(); // top detour
    let y = net.add_roadm(); // bottom detour
    let f_bc = net.add_fiber(b, c, 100.0).unwrap();
    let f_bx = net.add_fiber(b, x, 120.0).unwrap();
    let f_xc = net.add_fiber(x, c, 120.0).unwrap();
    let f_by = net.add_fiber(b, y, 140.0).unwrap();
    let f_yc = net.add_fiber(y, c, 140.0).unwrap();

    // Two IP links on the direct fiber: IP1 (4 λ), IP2 (8 λ) @100 Gbps.
    let ip1 = net
        .provision(Lightpath {
            src: b,
            dst: c,
            path: vec![f_bc],
            slots: (0..4).collect(),
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
    let ip2 = net
        .provision(Lightpath {
            src: b,
            dst: c,
            path: vec![f_bc],
            slots: (4..12).collect(),
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
    // Background traffic leaves 3 free slots on the top detour, 2 on the
    // bottom one.
    for w in 3..16 {
        for (s, d, f) in [(b, x, f_bx), (x, c, f_xc)] {
            net.provision(Lightpath {
                src: s,
                dst: d,
                path: vec![f],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        }
    }
    for w in 2..16 {
        for (s, d, f) in [(b, y, f_by), (y, c, f_yc)] {
            net.provision(Lightpath {
                src: s,
                dst: d,
                path: vec![f],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        }
    }

    println!("== Fig. 7: partial restoration candidates ==\n");
    println!("Healthy state: IP1 = 400 Gbps, IP2 = 800 Gbps on fiber B–C.");
    println!("Fiber B–C is cut: 12 wavelengths (1.2 Tbps) go dark.\n");

    // --- What does the optical layer say? --------------------------------
    let rwa = RwaConfig::default();
    let relaxed = solve_relaxed(&net, &[f_bc], &rwa);
    println!(
        "RWA relaxation: {:.1} of 12 wavelengths restorable in total",
        relaxed.total_wavelengths
    );
    for l in &relaxed.links {
        let name = if l.lightpath == ip1 { "IP1" } else { "IP2" };
        println!("  {}: fractional λ = {:.2} (lost {})", name, l.wavelengths, l.lost_wavelengths);
    }

    // --- Enumerate the paper's three candidates and check feasibility. ---
    println!("\nCandidate restoration splits (all restore 500 Gbps):");
    let candidates = [(2usize, 3usize), (1, 4), (3, 2)];
    for (i, &(w1, w2)) in candidates.iter().enumerate() {
        let ok = is_feasible(&net, &[f_bc], &rwa, &[(ip1, w1), (ip2, w2)]);
        println!(
            "  candidate {}: IP1 ← {} λ ({} Gbps), IP2 ← {} λ ({} Gbps)  [feasible: {}]",
            i + 1,
            w1,
            w1 * 100,
            w2,
            w2 * 100,
            ok
        );
    }

    // --- Throughput of each candidate under the Fig. 7 demands. ----------
    let demand = [(ip1, 100.0f64), (ip2, 400.0f64)];
    println!("\nTraffic demand: IP1 = 100 Gbps, IP2 = 400 Gbps.");
    let mut best = (0, 0.0);
    for (i, &(w1, w2)) in candidates.iter().enumerate() {
        let throughput: f64 =
            demand.iter().zip([w1, w2]).map(|(&(_, d), w)| d.min(w as f64 * 100.0)).sum();
        println!("  candidate {}: throughput = {} Gbps", i + 1, throughput);
        if throughput > best.1 {
            best = (i + 1, throughput);
        }
    }
    println!(
        "\nWinner: candidate {} with {} Gbps — the optical layer alone cannot \
         tell the candidates apart; the TE must choose.",
        best.0, best.1
    );
    assert_eq!(best.0, 2, "Fig. 7's candidate 2 must win");
}
