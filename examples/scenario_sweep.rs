//! Correlated multi-failure scenario sweep: compile → shard → merge.
//!
//! Compiles a [`ScenarioUniverse`] (exhaustive k-cuts, SRLG conduit
//! groups, rolling maintenance windows, flapping fibers, importance
//! sampling) on B4 and IBM, runs sharded LotteryTicket generation, merges
//! the shards, and asserts the merged [`TicketSet`] is byte-identical to
//! the single-shard run — the contract that makes the offline stage
//! embarrassingly parallel across *processes*, not just threads.
//!
//! Reports obs metrics (`scenario.compiled`, `scenario.sampled`,
//! per-shard `offline.scenario` spans) and writes `BENCH_scenarios.json`
//! (scenarios/sec, kept/dedup/infeasible counts, per-shard digests).
//!
//! Run: `cargo run --release --example scenario_sweep` — or with
//! `-- --smoke` for the small CI universe (2 shards, B4 only).

use arrow_wan::obs::RingSubscriber;
use arrow_wan::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;

struct TopologyReport {
    name: String,
    universe: ScenarioUniverse,
    compile_seconds: f64,
    unsharded_digest: u64,
    unsharded_wall: f64,
    offline: OfflineStats,
    shard_runs: Vec<ShardRun>,
    pool_tickets: usize,
    pool_mass: f64,
}

struct ShardRun {
    of: usize,
    shard_digests: Vec<u64>,
    merged_digest: u64,
    scenario_spans: usize,
    wall_seconds: f64,
}

fn sweep_topology(
    name: &str,
    wan: &Wan,
    ucfg: &UniverseConfig,
    lcfg: &LotteryConfig,
    shard_counts: &[usize],
    ring: &RingSubscriber,
) -> TopologyReport {
    println!("== scenario sweep: {} ==", wan.summary());

    ring.clear();
    let universe = compile_universe(wan, ucfg);
    let compile_spans = ring.finished_spans("scenario.compile");
    assert_eq!(compile_spans.len(), 1, "one compile span per universe");
    let compile_seconds = compile_spans[0].duration_seconds().expect("span carries duration");
    println!(
        "universe: {} scenarios (enumerated {}, dedup {}, sampled out {}) in {:.3}s | \
         covered {:.6} | digest {:016x}",
        universe.len(),
        universe.stats.enumerated,
        universe.stats.deduped,
        universe.stats.sampled_out,
        compile_seconds,
        universe.covered_probability(),
        universe.digest()
    );
    let by_source =
        |src: ScenarioSource| universe.scenarios.iter().filter(|c| c.source == src).count();
    println!(
        "  sources: {} k-cut | {} flapping | {} srlg | {} maintenance | max cut size {}",
        by_source(ScenarioSource::KCut),
        by_source(ScenarioSource::Flapping),
        by_source(ScenarioSource::Srlg),
        by_source(ScenarioSource::Maintenance),
        universe.scenarios.iter().map(|c| c.scenario.cut_fibers.len()).max().unwrap_or(0)
    );

    // Single-shard reference run.
    ring.clear();
    let (full, offline) = generate_tickets_universe(wan, &universe, lcfg);
    assert!(full.is_full());
    let unsharded_wall = offline.wall_seconds;
    let full_digest = full.digest();
    let reference_spans = ring.finished_spans("offline.scenario").len();
    assert_eq!(reference_spans, universe.len(), "one offline.scenario span per scenario");
    println!(
        "unsharded: {} | {:.1} scenarios/s | digest {:016x}",
        offline.summary(),
        universe.len() as f64 / unsharded_wall.max(1e-9),
        full_digest
    );

    // Sharded runs: generate each shard independently, merge, compare.
    let mut shard_runs = Vec::new();
    for &of in shard_counts {
        ring.clear();
        let mut wall = 0.0;
        let mut shards = Vec::with_capacity(of);
        for index in 0..of {
            let (set, stats) =
                generate_tickets_shard(wan, &universe, lcfg, ShardSpec { index, of });
            wall += stats.wall_seconds;
            shards.push(set);
        }
        let scenario_spans = ring.finished_spans("offline.scenario").len();
        assert_eq!(scenario_spans, universe.len(), "per-shard spans must cover the universe");
        let shard_digests: Vec<u64> = shards.iter().map(|s| s.digest()).collect();
        let merged = TicketSet::merge_all(shards).expect("honest shards must merge");
        let merged_digest = merged.digest();
        assert_eq!(merged, full, "{of}-shard merge is not byte-identical to the unsharded run");
        assert_eq!(merged_digest, full_digest, "digest mismatch at {of} shards");
        println!(
            "  {of} shard(s): merged digest {merged_digest:016x} == unsharded ✓ \
             ({scenario_spans} offline.scenario spans, {wall:.2}s summed wall)"
        );
        shard_runs.push(ShardRun {
            of,
            shard_digests,
            merged_digest,
            scenario_spans,
            wall_seconds: wall,
        });
    }

    // Deduplicated weighted ticket pool across the whole universe.
    let pool = full.weighted_pool(&universe.probabilities());
    let pool_mass: f64 = pool.iter().map(|w| w.probability).sum();
    println!(
        "ticket pool: {} tickets kept of {} generated ({} cross-scenario duplicates) | \
         pooled mass {:.6}\n",
        pool.len(),
        full.total_tickets(),
        full.total_tickets() - pool.len(),
        pool_mass
    );

    TopologyReport {
        name: name.to_string(),
        universe,
        compile_seconds,
        unsharded_digest: full_digest,
        unsharded_wall,
        offline,
        shard_runs,
        pool_tickets: pool.len(),
        pool_mass,
    }
}

fn report_json(reports: &[TopologyReport]) -> String {
    let mut out = String::from("{\n  \"topologies\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let s = &r.universe.stats;
        let mut shards = String::new();
        for (j, sr) in r.shard_runs.iter().enumerate() {
            let digests: Vec<String> =
                sr.shard_digests.iter().map(|d| format!("\"{d:016x}\"")).collect();
            let _ = write!(
                shards,
                "{}{{\"of\":{},\"merged_digest\":\"{:016x}\",\"scenario_spans\":{},\
                 \"wall_seconds\":{:.6},\"shard_digests\":[{}]}}",
                if j > 0 { "," } else { "" },
                sr.of,
                sr.merged_digest,
                sr.scenario_spans,
                sr.wall_seconds,
                digests.join(",")
            );
        }
        let _ = writeln!(
            out,
            "    {{\"name\":\"{}\",\"scenarios\":{},\"enumerated\":{},\"deduped\":{},\
             \"sampled_out\":{},\"covered_probability\":{:.9},\"universe_digest\":\"{:016x}\",\
             \"compile_seconds\":{:.6},\"compile_scenarios_per_sec\":{:.1},\
             \"generation_wall_seconds\":{:.6},\"generation_scenarios_per_sec\":{:.1},\
             \"tickets_kept\":{},\"tickets_infeasible\":{},\"tickets_duplicate\":{},\
             \"ticket_set_digest\":\"{:016x}\",\"pool_tickets\":{},\"pool_mass\":{:.9},\
             \"shard_runs\":[{}]}}{}",
            r.name,
            s.kept,
            s.enumerated,
            s.deduped,
            s.sampled_out,
            r.universe.covered_probability(),
            r.universe.digest(),
            r.compile_seconds,
            s.enumerated as f64 / r.compile_seconds.max(1e-9),
            r.unsharded_wall,
            s.kept as f64 / r.unsharded_wall.max(1e-9),
            r.offline.total_kept(),
            r.offline.total_infeasible(),
            r.offline.total_duplicates(),
            r.unsharded_digest,
            r.pool_tickets,
            r.pool_mass,
            shards,
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let snap = arrow_wan::obs::metrics::snapshot();
    let _ = writeln!(
        out,
        "  ],\n  \"obs\": {{\"scenario.compiled\":{},\"scenario.sampled\":{},\
         \"scenario.dedup\":{},\"offline.scenarios\":{},\"offline.tickets.kept\":{}}}\n}}",
        snap.counter("scenario.compiled"),
        snap.counter("scenario.sampled"),
        snap.counter("scenario.dedup"),
        snap.counter("offline.scenarios"),
        snap.counter("offline.tickets.kept")
    );
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ring = Arc::new(RingSubscriber::new(1 << 16));
    arrow_wan::obs::trace::install(ring.clone());

    let (ucfg, lcfg, shard_counts): (UniverseConfig, LotteryConfig, Vec<usize>) = if smoke {
        (
            UniverseConfig {
                max_k: 2,
                cutoff: 1e-3,
                auto_srlg_size: 3,
                auto_srlg_probability: 1e-3,
                maintenance_window: 2,
                maintenance_probability: 5e-4,
                max_scenarios: 8,
                ..Default::default()
            },
            LotteryConfig { num_tickets: 6, ..Default::default() },
            vec![2],
        )
    } else {
        (
            UniverseConfig {
                max_k: 3,
                cutoff: 1e-5,
                auto_srlg_size: 3,
                auto_srlg_probability: 1e-3,
                maintenance_window: 2,
                maintenance_probability: 5e-4,
                flapping_count: 2,
                flapping_boost: 4.0,
                max_scenarios: 48,
                ..Default::default()
            },
            LotteryConfig { num_tickets: 12, ..Default::default() },
            vec![2, 4],
        )
    };

    let mut reports = Vec::new();
    let b4_wan = b4(17);
    reports.push(sweep_topology("B4", &b4_wan, &ucfg, &lcfg, &shard_counts, &ring));
    if !smoke {
        let ibm_wan = ibm(17);
        reports.push(sweep_topology("IBM", &ibm_wan, &ucfg, &lcfg, &shard_counts, &ring));
    }

    arrow_wan::obs::trace::uninstall();

    let json = report_json(&reports);
    std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    println!("wrote BENCH_scenarios.json");
    println!(
        "all {} topology sweep(s): every shard merge reproduced the unsharded TicketSet",
        reports.len()
    );
}
