//! Correlated multi-failure scenario sweep: compile → shard → merge.
//!
//! Compiles a [`ScenarioUniverse`] (exhaustive k-cuts, SRLG conduit
//! groups, rolling maintenance windows, flapping fibers, importance
//! sampling) on B4 and IBM, runs sharded LotteryTicket generation, merges
//! the shards, and asserts the merged [`TicketSet`] is byte-identical to
//! the single-shard run — the contract that makes the offline stage
//! embarrassingly parallel across *processes*, not just threads.
//!
//! Reports obs metrics (`scenario.compiled`, `scenario.sampled`,
//! per-shard `offline.scenario` spans) and writes `BENCH_scenarios.json`
//! (scenarios/sec, kept/dedup/infeasible counts, per-shard digests).
//!
//! Also races the batched LP path against the sequential one: ticket
//! generation with `batch_lanes: 1` must be byte-identical to the batched
//! default, and a multi-RHS PDHG panel (one scenario LP cloned into many
//! gamma-budget lanes) must beat lane-by-lane solves by ≥ 3× while staying
//! bitwise equal. Writes `BENCH_batch.json` with both comparisons.
//!
//! Run: `cargo run --release --example scenario_sweep` — or with
//! `-- --smoke` for the small CI universe (2 shards, B4 only).

use arrow_wan::obs::RingSubscriber;
use arrow_wan::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;

/// Floor on the universe size for the pipeline comparison — below this,
/// the batched/sequential wall-clock ratio in `BENCH_batch.json` measures
/// fixed costs, not the batch path.
const MIN_PIPELINE_SCENARIOS: usize = 64;

struct TopologyReport {
    name: String,
    universe: ScenarioUniverse,
    compile_seconds: f64,
    unsharded_digest: u64,
    unsharded_wall: f64,
    sequential_wall: f64,
    offline: OfflineStats,
    shard_runs: Vec<ShardRun>,
    pool_tickets: usize,
    pool_mass: f64,
}

struct ShardRun {
    of: usize,
    shard_digests: Vec<u64>,
    merged_digest: u64,
    scenario_spans: usize,
    wall_seconds: f64,
}

fn sweep_topology(
    name: &str,
    wan: &Wan,
    ucfg: &UniverseConfig,
    lcfg: &LotteryConfig,
    shard_counts: &[usize],
    ring: &RingSubscriber,
) -> TopologyReport {
    println!("== scenario sweep: {} ==", wan.summary());

    ring.clear();
    let universe = compile_universe(wan, ucfg);
    let compile_spans = ring.finished_spans("scenario.compile");
    assert_eq!(compile_spans.len(), 1, "one compile span per universe");
    let compile_seconds = compile_spans[0].duration_seconds().expect("span carries duration");
    println!(
        "universe: {} scenarios (enumerated {}, dedup {}, sampled out {}) in {:.3}s | \
         covered {:.6} | digest {:016x}",
        universe.len(),
        universe.stats.enumerated,
        universe.stats.deduped,
        universe.stats.sampled_out,
        compile_seconds,
        universe.covered_probability(),
        universe.digest()
    );
    assert!(
        universe.len() >= MIN_PIPELINE_SCENARIOS,
        "pipeline comparison needs >= {MIN_PIPELINE_SCENARIOS} scenarios, got {} — widen the \
         universe config",
        universe.len()
    );
    let by_source =
        |src: ScenarioSource| universe.scenarios.iter().filter(|c| c.source == src).count();
    println!(
        "  sources: {} k-cut | {} flapping | {} srlg | {} maintenance | max cut size {}",
        by_source(ScenarioSource::KCut),
        by_source(ScenarioSource::Flapping),
        by_source(ScenarioSource::Srlg),
        by_source(ScenarioSource::Maintenance),
        universe.scenarios.iter().map(|c| c.scenario.cut_fibers.len()).max().unwrap_or(0)
    );

    // Warm the process once (first-touch page faults and lazy allocator
    // growth dominate a cold first run) so the batched/sequential wall
    // clocks below compare steady states, not who ran first.
    let _ = generate_tickets_universe(wan, &universe, lcfg);

    // Single-shard reference run. Timed as the min over three repeats —
    // the universes here finish in tens of milliseconds, where scheduler
    // noise swamps a single wall-clock sample.
    let mut unsharded_wall = f64::INFINITY;
    let mut reference = None;
    for _ in 0..3 {
        ring.clear();
        let (set, stats) = generate_tickets_universe(wan, &universe, lcfg);
        let reference_spans = ring.finished_spans("offline.scenario").len();
        assert_eq!(reference_spans, universe.len(), "one offline.scenario span per scenario");
        unsharded_wall = unsharded_wall.min(stats.wall_seconds);
        reference = Some((set, stats));
    }
    let (full, offline) = reference.expect("three reference runs");
    assert!(full.is_full());
    let full_digest = full.digest();
    println!(
        "unsharded: {} | {:.1} scenarios/s | digest {:016x}",
        offline.summary(),
        universe.len() as f64 / unsharded_wall.max(1e-9),
        full_digest
    );

    // Same universe with the batched LP path disabled (`batch_lanes: 1`,
    // the pre-batching sequential code path). The multi-RHS panel is an
    // implementation detail: output must be byte-identical, and the
    // sequential path must emit the same one-span-per-scenario trace.
    let seq_cfg = LotteryConfig { batch_lanes: 1, ..lcfg.clone() };
    let mut sequential_wall = f64::INFINITY;
    for _ in 0..3 {
        ring.clear();
        let (seq_set, seq_stats) = generate_tickets_universe(wan, &universe, &seq_cfg);
        assert_eq!(
            ring.finished_spans("offline.scenario").len(),
            universe.len(),
            "sequential path must emit one offline.scenario span per scenario"
        );
        assert_eq!(seq_set, full, "batch_lanes=1 run is not byte-identical to the batched default");
        assert_eq!(seq_set.digest(), full_digest, "sequential/batched digest mismatch");
        sequential_wall = sequential_wall.min(seq_stats.wall_seconds);
    }
    println!(
        "sequential (batch_lanes=1): {:.1} scenarios/s vs batched {:.1} scenarios/s \
         ({:.2}x wall) | digests equal ✓",
        universe.len() as f64 / sequential_wall.max(1e-9),
        universe.len() as f64 / unsharded_wall.max(1e-9),
        sequential_wall / unsharded_wall.max(1e-9)
    );

    // Sharded runs: generate each shard independently, merge, compare.
    let mut shard_runs = Vec::new();
    for &of in shard_counts {
        ring.clear();
        let mut wall = 0.0;
        let mut shards = Vec::with_capacity(of);
        for index in 0..of {
            let (set, stats) =
                generate_tickets_shard(wan, &universe, lcfg, ShardSpec { index, of });
            wall += stats.wall_seconds;
            shards.push(set);
        }
        let scenario_spans = ring.finished_spans("offline.scenario").len();
        assert_eq!(scenario_spans, universe.len(), "per-shard spans must cover the universe");
        let shard_digests: Vec<u64> = shards.iter().map(|s| s.digest()).collect();
        let merged = TicketSet::merge_all(shards).expect("honest shards must merge");
        let merged_digest = merged.digest();
        assert_eq!(merged, full, "{of}-shard merge is not byte-identical to the unsharded run");
        assert_eq!(merged_digest, full_digest, "digest mismatch at {of} shards");
        println!(
            "  {of} shard(s): merged digest {merged_digest:016x} == unsharded ✓ \
             ({scenario_spans} offline.scenario spans, {wall:.2}s summed wall)"
        );
        shard_runs.push(ShardRun {
            of,
            shard_digests,
            merged_digest,
            scenario_spans,
            wall_seconds: wall,
        });
    }

    // Deduplicated weighted ticket pool across the whole universe.
    let pool = full.weighted_pool(&universe.probabilities());
    let pool_mass: f64 = pool.iter().map(|w| w.probability).sum();
    println!(
        "ticket pool: {} tickets kept of {} generated ({} cross-scenario duplicates) | \
         pooled mass {:.6}\n",
        pool.len(),
        full.total_tickets(),
        full.total_tickets() - pool.len(),
        pool_mass
    );

    TopologyReport {
        name: name.to_string(),
        universe,
        compile_seconds,
        unsharded_digest: full_digest,
        unsharded_wall,
        sequential_wall,
        offline,
        shard_runs,
        pool_tickets: pool.len(),
        pool_mass,
    }
}

struct PanelBench {
    topology: String,
    lanes: usize,
    rows: usize,
    cols: usize,
    sequential_seconds: f64,
    batched_seconds: f64,
    speedup: f64,
}

/// Clone the largest scenario RWA LP in the universe into a multi-RHS
/// family (per-lane gamma restoration budgets, patched via
/// [`arrow_wan::optical::rwa::RelaxedRwaLp::gamma_rows`]) and race
/// lane-by-lane `solve` against one `solve_batch` panel under the
/// PDHG-pinned config. Panics unless every lane is bitwise identical to
/// its sequential twin — the speedup is only meaningful if the answers
/// are the same bytes.
fn panel_bench(name: &str, wan: &Wan, universe: &ScenarioUniverse, lanes: usize) -> PanelBench {
    use arrow_wan::optical::rwa::build_relaxed;

    let rwa = RwaConfig::default();
    let base = universe
        .scenarios
        .iter()
        .map(|c| build_relaxed(&wan.optical, &c.scenario.cut_fibers, &rwa))
        .max_by_key(|lp| lp.model.num_cons())
        .expect("non-empty universe");
    assert!(!base.gamma_rows().is_empty(), "panel bench needs gamma rows to patch");
    let models: Vec<Model> = (0..lanes)
        .map(|l| {
            let mut m = base.model.clone();
            // Tighten each lane's restoration budget by a distinct factor
            // so every lane is a genuinely different RHS.
            let tighten = 1.0 - 0.5 * l as f64 / lanes as f64;
            for &row in base.gamma_rows() {
                let cap = m.rhs(row);
                m.set_rhs(row, (cap * tighten).max(1.0));
            }
            m
        })
        .collect();

    // Warm both paths once (page faults, lazy allocation), then take the
    // min over repeats — wall-clock noise on shared machines swamps a
    // single measurement, and the minimum is the least-contended run.
    let cfg = SolverConfig::first_order(1e-7);
    let _ = arrow_wan::lp::solve_batch(&models, &cfg);
    let mut sequential_seconds = f64::INFINITY;
    let mut batched_seconds = f64::INFINITY;
    let mut sequential = Vec::new();
    let mut batched = Vec::new();
    for _ in 0..7 {
        let t = std::time::Instant::now();
        sequential = models.iter().map(|m| arrow_wan::lp::solve(m, &cfg)).collect();
        sequential_seconds = sequential_seconds.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        batched = arrow_wan::lp::solve_batch(&models, &cfg);
        batched_seconds = batched_seconds.min(t.elapsed().as_secs_f64());
    }

    assert_eq!(batched.len(), lanes);
    for (s, b) in sequential.iter().zip(&batched) {
        assert_eq!(b.stats.lanes, lanes, "a lane fell out of the shared panel");
        assert_eq!(b.stats.backend, arrow_wan::lp::BackendKind::Pdhg);
        assert_eq!(s.status, b.status);
        assert_eq!(s.objective.to_bits(), b.objective.to_bits());
        assert_eq!(s.x.len(), b.x.len());
        for (xs, xb) in s.x.iter().zip(&b.x) {
            assert_eq!(xs.to_bits(), xb.to_bits(), "primal drift between panel and sequential");
        }
        for (ds, db) in s.duals.iter().zip(&b.duals) {
            assert_eq!(ds.to_bits(), db.to_bits(), "dual drift between panel and sequential");
        }
    }

    let speedup = sequential_seconds / batched_seconds.max(1e-9);
    println!(
        "panel bench [{name}]: {lanes} lanes x {}x{} LP | sequential {:.3}s, batched {:.3}s \
         ({speedup:.2}x) | bitwise identical ✓",
        base.model.num_cons(),
        base.model.num_vars(),
        sequential_seconds,
        batched_seconds
    );
    PanelBench {
        topology: name.to_string(),
        lanes,
        rows: base.model.num_cons(),
        cols: base.model.num_vars(),
        sequential_seconds,
        batched_seconds,
        speedup,
    }
}

fn batch_report_json(reports: &[TopologyReport], panels: &[PanelBench], threads: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\n  \"threads\": {threads},\n  \"panel\": [");
    for (i, p) in panels.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"topology\":\"{}\",\"lanes\":{},\"rows\":{},\"cols\":{},\
             \"sequential_seconds\":{:.6},\"batched_seconds\":{:.6},\
             \"lps_per_sec_sequential\":{:.1},\"lps_per_sec_batched\":{:.1},\
             \"speedup\":{:.3},\"bitwise_identical\":true}}{}",
            p.topology,
            p.lanes,
            p.rows,
            p.cols,
            p.sequential_seconds,
            p.batched_seconds,
            p.lanes as f64 / p.sequential_seconds.max(1e-9),
            p.lanes as f64 / p.batched_seconds.max(1e-9),
            p.speedup,
            if i + 1 < panels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],\n  \"pipeline\": [");
    for (i, r) in reports.iter().enumerate() {
        let n = r.universe.len() as f64;
        let _ = writeln!(
            out,
            "    {{\"name\":\"{}\",\"scenarios\":{},\
             \"sequential_wall_seconds\":{:.6},\"batched_wall_seconds\":{:.6},\
             \"sequential_scenarios_per_sec\":{:.1},\"batched_scenarios_per_sec\":{:.1},\
             \"speedup\":{:.3},\"digests_equal\":true,\"ticket_set_digest\":\"{:016x}\"}}{}",
            r.name,
            r.universe.len(),
            r.sequential_wall,
            r.unsharded_wall,
            n / r.sequential_wall.max(1e-9),
            n / r.unsharded_wall.max(1e-9),
            r.sequential_wall / r.unsharded_wall.max(1e-9),
            r.unsharded_digest,
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]\n}}");
    out
}

fn report_json(reports: &[TopologyReport]) -> String {
    let mut out = String::from("{\n  \"topologies\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let s = &r.universe.stats;
        let mut shards = String::new();
        for (j, sr) in r.shard_runs.iter().enumerate() {
            let digests: Vec<String> =
                sr.shard_digests.iter().map(|d| format!("\"{d:016x}\"")).collect();
            let _ = write!(
                shards,
                "{}{{\"of\":{},\"merged_digest\":\"{:016x}\",\"scenario_spans\":{},\
                 \"wall_seconds\":{:.6},\"shard_digests\":[{}]}}",
                if j > 0 { "," } else { "" },
                sr.of,
                sr.merged_digest,
                sr.scenario_spans,
                sr.wall_seconds,
                digests.join(",")
            );
        }
        let _ = writeln!(
            out,
            "    {{\"name\":\"{}\",\"scenarios\":{},\"enumerated\":{},\"deduped\":{},\
             \"sampled_out\":{},\"covered_probability\":{:.9},\"universe_digest\":\"{:016x}\",\
             \"compile_seconds\":{:.6},\"compile_scenarios_per_sec\":{:.1},\
             \"generation_wall_seconds\":{:.6},\"generation_scenarios_per_sec\":{:.1},\
             \"tickets_kept\":{},\"tickets_infeasible\":{},\"tickets_duplicate\":{},\
             \"ticket_set_digest\":\"{:016x}\",\"pool_tickets\":{},\"pool_mass\":{:.9},\
             \"shard_runs\":[{}]}}{}",
            r.name,
            s.kept,
            s.enumerated,
            s.deduped,
            s.sampled_out,
            r.universe.covered_probability(),
            r.universe.digest(),
            r.compile_seconds,
            s.enumerated as f64 / r.compile_seconds.max(1e-9),
            r.unsharded_wall,
            s.kept as f64 / r.unsharded_wall.max(1e-9),
            r.offline.total_kept(),
            r.offline.total_infeasible(),
            r.offline.total_duplicates(),
            r.unsharded_digest,
            r.pool_tickets,
            r.pool_mass,
            shards,
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let snap = arrow_wan::obs::metrics::snapshot();
    let _ = writeln!(
        out,
        "  ],\n  \"obs\": {{\"scenario.compiled\":{},\"scenario.sampled\":{},\
         \"scenario.dedup\":{},\"offline.scenarios\":{},\"offline.tickets.kept\":{}}}\n}}",
        snap.counter("scenario.compiled"),
        snap.counter("scenario.sampled"),
        snap.counter("scenario.dedup"),
        snap.counter("offline.scenarios"),
        snap.counter("offline.tickets.kept")
    );
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ring = Arc::new(RingSubscriber::new(1 << 16));
    arrow_wan::obs::trace::install(ring.clone());

    // Both modes compile at least MIN_PIPELINE_SCENARIOS scenarios: the
    // batched-vs-sequential pipeline comparison in BENCH_batch.json is
    // meaningless on a handful of LPs (fixed costs dominate), so even the
    // CI smoke universe is sized to something the batch path can sink its
    // teeth into. Smoke stays cheap by keeping num_tickets low instead.
    let (ucfg, lcfg, shard_counts): (UniverseConfig, LotteryConfig, Vec<usize>) = if smoke {
        (
            UniverseConfig {
                max_k: 3,
                cutoff: 1e-5,
                auto_srlg_size: 3,
                auto_srlg_probability: 1e-3,
                maintenance_window: 2,
                maintenance_probability: 5e-4,
                max_scenarios: MIN_PIPELINE_SCENARIOS,
                ..Default::default()
            },
            LotteryConfig { num_tickets: 6, ..Default::default() },
            vec![2],
        )
    } else {
        (
            UniverseConfig {
                max_k: 3,
                cutoff: 1e-5,
                auto_srlg_size: 3,
                auto_srlg_probability: 1e-3,
                maintenance_window: 2,
                maintenance_probability: 5e-4,
                flapping_count: 2,
                flapping_boost: 4.0,
                max_scenarios: 96,
                ..Default::default()
            },
            LotteryConfig { num_tickets: 12, ..Default::default() },
            vec![2, 4],
        )
    };

    let mut reports = Vec::new();
    let b4_wan = b4(17);
    reports.push(sweep_topology("B4", &b4_wan, &ucfg, &lcfg, &shard_counts, &ring));
    let ibm_wan = if smoke { None } else { Some(ibm(17)) };
    if let Some(wan) = &ibm_wan {
        reports.push(sweep_topology("IBM", wan, &ucfg, &lcfg, &shard_counts, &ring));
    }

    arrow_wan::obs::trace::uninstall();

    // Multi-RHS panel bench: the tentpole's headline number. 16 lanes of
    // one structure (the default `batch_lanes`, and the width where the
    // panel working set stays cache-resident), sequential loop vs one SoA
    // PDHG panel.
    let lanes = 16;
    let mut panels = vec![panel_bench("B4", &b4_wan, &reports[0].universe, lanes)];
    if let Some(wan) = &ibm_wan {
        panels.push(panel_bench("IBM", wan, &reports[1].universe, lanes));
    }
    for p in &panels {
        assert!(
            p.speedup >= 3.0,
            "batched panel on {} only {:.2}x over sequential (need >= 3x)",
            p.topology,
            p.speedup
        );
    }

    let json = report_json(&reports);
    std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    println!("wrote BENCH_scenarios.json");
    let batch_json = batch_report_json(&reports, &panels, arrow_wan::core::default_threads());
    std::fs::write("BENCH_batch.json", &batch_json).expect("write BENCH_batch.json");
    println!("wrote BENCH_batch.json");
    println!(
        "all {} topology sweep(s): every shard merge reproduced the unsharded TicketSet",
        reports.len()
    );
}
