//! Warm-vs-cold online-stage sweep over a diurnal traffic cycle (§5).
//!
//! The online stage must finish inside a five-minute TE epoch. This sweep
//! replays a day of B4 traffic (scaled gravity matrices tracing a diurnal
//! curve) twice through the same controller:
//!
//! * **cold** — `ArrowController::plan`, which rebuilds tunnels and both
//!   LP models from scratch every interval, and
//! * **warm** — `ArrowController::plan_warm`, which caches the Phase I
//!   skeleton, patches demand bounds in place, and warm-starts each LP
//!   from the previous interval's optimum.
//!
//! Both paths must agree exactly — identical winning tickets, Phase II
//! objectives within 1e-6 relative — while the warm path runs faster.
//! The run writes `BENCH_online.json` with per-interval solver stats and
//! a summary block; the final asserts make CI fail on any divergence.
//!
//! Run: `cargo run --release --example online_sweep`

use arrow_wan::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// Diurnal scale factors: a day sampled every ~2.7 hours, tracing the
/// familiar trough–peak–trough curve around the base gravity matrix.
const DIURNAL: [f64; 9] = [0.60, 0.75, 0.95, 1.10, 1.15, 1.05, 0.90, 0.72, 0.62];

struct Interval {
    scale: f64,
    seconds: f64,
    objective: f64,
    winning: Vec<usize>,
    phase1: SolveStats,
    phase2: SolveStats,
}

fn run_sweep(
    ctl: &mut ArrowController,
    tm: &TrafficMatrix,
    warm: bool,
) -> (Vec<Interval>, f64) {
    let start = Instant::now();
    let mut out = Vec::new();
    for &scale in &DIURNAL {
        let shifted = tm.scaled(scale);
        let t0 = Instant::now();
        let plan = if warm { ctl.plan_warm(&shifted) } else { ctl.plan(&shifted) }
            .expect("valid offline state plans cleanly");
        let seconds = t0.elapsed().as_secs_f64();
        out.push(Interval {
            scale,
            seconds,
            objective: plan.outcome.output.alloc.total_admitted(),
            winning: plan.outcome.winning.clone(),
            phase1: plan.outcome.phase1_stats,
            phase2: plan.outcome.phase2_stats,
        });
    }
    (out, start.elapsed().as_secs_f64())
}

fn stats_json(s: &SolveStats) -> String {
    format!(
        "{{\"rows\": {}, \"cols\": {}, \"nnz\": {}, \"iterations\": {}, \
         \"restarts\": {}, \"backend\": \"{}\", \"warm\": \"{}\", \"seconds\": {:.6}}}",
        s.rows,
        s.cols,
        s.nnz,
        s.iterations,
        s.restarts,
        s.backend.label(),
        s.warm.label(),
        s.solve_seconds
    )
}

fn intervals_json(intervals: &[Interval]) -> String {
    let mut s = String::from("[");
    for (i, iv) in intervals.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let winning: Vec<String> = iv.winning.iter().map(|w| w.to_string()).collect();
        let _ = write!(
            s,
            "{{\"scale\": {}, \"seconds\": {:.6}, \"objective\": {:.9}, \
             \"winning\": [{}], \"phase1\": {}, \"phase2\": {}}}",
            iv.scale,
            iv.seconds,
            iv.objective,
            winning.join(", "),
            stats_json(&iv.phase1),
            stats_json(&iv.phase2)
        );
    }
    s.push(']');
    s
}

fn main() {
    let wan = b4(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
    let scens = failures.failure_scenarios().to_vec();
    let cfg = ControllerConfig {
        lottery: LotteryConfig { num_tickets: 40, ..Default::default() },
        tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
        ..Default::default()
    };
    let tm = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() })
        [0]
    .scaled(3.0);

    println!("== online-stage warm-vs-cold sweep: {} ==", wan.summary());
    let mut ctl = ArrowController::new(wan, scens, cfg);
    let z: usize = ctl
        .offline()
        .tickets
        .per_scenario
        .iter()
        .map(|t| t.len())
        .max()
        .unwrap_or(0);
    println!(
        "{} scenarios, |Z| up to {} tickets, {} diurnal intervals\n",
        ctl.offline().scenarios.len(),
        z,
        DIURNAL.len()
    );

    let (cold, cold_wall) = run_sweep(&mut ctl, &tm, false);
    let (warm, warm_wall) = run_sweep(&mut ctl, &tm, true);

    println!("interval | scale | cold s | warm s | warm p1/p2 | objective match");
    let mut objectives_match = true;
    let mut winning_identical = true;
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        let rel = (c.objective - w.objective).abs() / (1.0 + c.objective.abs());
        objectives_match &= rel <= 1e-6;
        winning_identical &= c.winning == w.winning;
        println!(
            "  {:>6} | {:>5.2} | {:>6.3} | {:>6.3} | {:>4}/{:<4} | rel {:.2e}{}",
            i,
            c.scale,
            c.seconds,
            w.seconds,
            w.phase1.warm.label(),
            w.phase2.warm.label(),
            rel,
            if c.winning == w.winning { "" } else { "  WINNERS DIVERGED" }
        );
    }
    let speedup = cold_wall / warm_wall.max(1e-12);
    println!(
        "\ncold wall {cold_wall:.3}s, warm wall {warm_wall:.3}s -> {speedup:.2}x end-to-end"
    );

    let json = format!(
        "{{\n  \"topology\": \"B4\",\n  \"intervals\": {},\n  \"num_scenarios\": {},\n  \
         \"num_tickets\": {},\n  \"cold_wall_seconds\": {:.6},\n  \"warm_wall_seconds\": {:.6},\n  \
         \"speedup\": {:.4},\n  \"objectives_match\": {},\n  \"winning_identical\": {},\n  \
         \"cold\": {},\n  \"warm\": {}\n}}\n",
        DIURNAL.len(),
        ctl.offline().scenarios.len(),
        z,
        cold_wall,
        warm_wall,
        speedup,
        objectives_match,
        winning_identical,
        intervals_json(&cold),
        intervals_json(&warm)
    );
    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("wrote BENCH_online.json");

    assert!(objectives_match, "warm Phase II objectives diverged from cold (> 1e-6 relative)");
    assert!(winning_identical, "warm winning-ticket choices diverged from cold");
    assert!(
        speedup >= 1.5,
        "warm path speedup {speedup:.2}x below the 1.5x budget"
    );
    println!("OK: identical plans, {speedup:.2}x faster warm");
}
