//! Warm-vs-cold online-stage sweep over a diurnal traffic cycle (§5).
//!
//! The online stage must finish inside a five-minute TE epoch. This sweep
//! replays a day of B4 traffic (scaled gravity matrices tracing a diurnal
//! curve) twice through the same controller:
//!
//! * **cold** — `ArrowController::plan`, which rebuilds tunnels and both
//!   LP models from scratch every interval, and
//! * **warm** — `ArrowController::plan_warm`, which caches the Phase I
//!   skeleton, patches demand bounds in place, and warm-starts each LP
//!   from the previous interval's optimum.
//!
//! Both paths must agree exactly — identical winning tickets, Phase II
//! objectives within 1e-6 relative — while the warm path runs faster.
//! The run writes `BENCH_online.json` with per-interval solver stats and
//! a summary block; the final asserts make CI fail on any divergence.
//!
//! Run: `cargo run --release --example online_sweep`

use arrow_wan::obs::{FieldValue, RingSubscriber};
use arrow_wan::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;

/// Diurnal scale factors: a day sampled every ~2.7 hours, tracing the
/// familiar trough–peak–trough curve around the base gravity matrix.
const DIURNAL: [f64; 9] = [0.60, 0.75, 0.95, 1.10, 1.15, 1.05, 0.90, 0.72, 0.62];

struct Interval {
    scale: f64,
    seconds: f64,
    objective: f64,
    winning: Vec<usize>,
    phase1: SolveStats,
    phase2: SolveStats,
}

fn run_sweep(
    ctl: &mut ArrowController,
    tm: &TrafficMatrix,
    warm: bool,
    ring: &RingSubscriber,
) -> (Vec<Interval>, f64) {
    ring.clear();
    let mut out = Vec::new();
    for &scale in &DIURNAL {
        let shifted = tm.scaled(scale);
        let plan = if warm { ctl.plan_warm(&shifted) } else { ctl.plan(&shifted) }
            .expect("valid offline state plans cleanly");
        out.push(Interval {
            scale,
            seconds: 0.0,
            objective: plan.outcome.output.alloc.total_admitted(),
            winning: plan.outcome.winning.clone(),
            phase1: plan.outcome.phase1_stats,
            phase2: plan.outcome.phase2_stats,
        });
    }
    // Per-interval wall clock comes from the controller's own "epoch"
    // trace spans rather than bespoke Instant bookkeeping around the call.
    let epochs = ring.finished_spans("epoch");
    assert_eq!(epochs.len(), out.len(), "one epoch span per diurnal interval");
    let expected_mode = if warm { "warm" } else { "cold" };
    for (iv, span) in out.iter_mut().zip(&epochs) {
        assert_eq!(
            span.field("mode").and_then(FieldValue::as_str),
            Some(expected_mode),
            "epoch span mode matches the sweep variant"
        );
        iv.seconds = span.duration_seconds().expect("span end carries a duration");
    }
    let wall = out.iter().map(|iv| iv.seconds).sum();
    (out, wall)
}

fn stats_json(s: &SolveStats) -> String {
    format!(
        "{{\"rows\": {}, \"cols\": {}, \"nnz\": {}, \"iterations\": {}, \
         \"restarts\": {}, \"refactors\": {}, \"backend\": \"{}\", \"warm\": \"{}\", \
         \"seconds\": {:.6}}}",
        s.rows,
        s.cols,
        s.nnz,
        s.iterations,
        s.restarts,
        s.refactors,
        s.backend.label(),
        s.warm.label(),
        s.solve_seconds
    )
}

/// Process-wide solver counters from the `arrow-obs` registry (covers the
/// offline stage and both sweeps). A new, purely additive field of
/// `BENCH_online.json`.
fn obs_json() -> String {
    let snap = arrow_wan::obs::metrics::snapshot();
    format!(
        "{{\"lp_solves\": {}, \"warm_hit\": {}, \"warm_miss\": {}, \"warm_cold\": {}, \
         \"simplex_iterations\": {}, \"simplex_refactors\": {}, \"epoch_cold\": {}, \
         \"epoch_warm\": {}}}",
        snap.counter("lp.solves"),
        snap.counter("lp.warm.hit"),
        snap.counter("lp.warm.miss"),
        snap.counter("lp.warm.cold"),
        snap.counter("lp.simplex.iterations"),
        snap.counter("lp.simplex.refactors"),
        snap.counter("epoch.cold"),
        snap.counter("epoch.warm"),
    )
}

fn intervals_json(intervals: &[Interval]) -> String {
    let mut s = String::from("[");
    for (i, iv) in intervals.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let winning: Vec<String> = iv.winning.iter().map(|w| w.to_string()).collect();
        let _ = write!(
            s,
            "{{\"scale\": {}, \"seconds\": {:.6}, \"objective\": {:.9}, \
             \"winning\": [{}], \"phase1\": {}, \"phase2\": {}}}",
            iv.scale,
            iv.seconds,
            iv.objective,
            winning.join(", "),
            stats_json(&iv.phase1),
            stats_json(&iv.phase2)
        );
    }
    s.push(']');
    s
}

fn main() {
    let wan = b4(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
    let scens = failures.failure_scenarios().to_vec();
    let cfg = ControllerConfig {
        lottery: LotteryConfig { num_tickets: 40, ..Default::default() },
        tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
        ..Default::default()
    };
    let tm = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() })[0]
        .scaled(3.0);

    println!("== online-stage warm-vs-cold sweep: {} ==", wan.summary());
    let mut ctl = ArrowController::new(wan, scens, cfg);
    // Subscribe after the offline stage so the ring holds only the online
    // epoch spans each sweep produces.
    let ring = Arc::new(RingSubscriber::new(4096));
    arrow_wan::obs::trace::install(ring.clone());
    let z: usize = ctl.offline().tickets.per_scenario.iter().map(|t| t.len()).max().unwrap_or(0);
    println!(
        "{} scenarios, |Z| up to {} tickets, {} diurnal intervals\n",
        ctl.offline().scenarios.len(),
        z,
        DIURNAL.len()
    );

    let (cold, cold_wall) = run_sweep(&mut ctl, &tm, false, &ring);
    let (warm, warm_wall) = run_sweep(&mut ctl, &tm, true, &ring);
    arrow_wan::obs::trace::uninstall();

    println!("interval | scale | cold s | warm s | warm p1/p2 | objective match");
    let mut objectives_match = true;
    let mut winning_identical = true;
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        let rel = (c.objective - w.objective).abs() / (1.0 + c.objective.abs());
        objectives_match &= rel <= 1e-6;
        winning_identical &= c.winning == w.winning;
        println!(
            "  {:>6} | {:>5.2} | {:>6.3} | {:>6.3} | {:>4}/{:<4} | rel {:.2e}{}",
            i,
            c.scale,
            c.seconds,
            w.seconds,
            w.phase1.warm.label(),
            w.phase2.warm.label(),
            rel,
            if c.winning == w.winning { "" } else { "  WINNERS DIVERGED" }
        );
    }
    let speedup = cold_wall / warm_wall.max(1e-12);
    println!("\ncold wall {cold_wall:.3}s, warm wall {warm_wall:.3}s -> {speedup:.2}x end-to-end");

    let json = format!(
        "{{\n  \"topology\": \"B4\",\n  \"intervals\": {},\n  \"num_scenarios\": {},\n  \
         \"num_tickets\": {},\n  \"cold_wall_seconds\": {:.6},\n  \"warm_wall_seconds\": {:.6},\n  \
         \"speedup\": {:.4},\n  \"objectives_match\": {},\n  \"winning_identical\": {},\n  \
         \"obs\": {},\n  \"cold\": {},\n  \"warm\": {}\n}}\n",
        DIURNAL.len(),
        ctl.offline().scenarios.len(),
        z,
        cold_wall,
        warm_wall,
        speedup,
        objectives_match,
        winning_identical,
        obs_json(),
        intervals_json(&cold),
        intervals_json(&warm)
    );
    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("wrote BENCH_online.json");

    assert!(objectives_match, "warm Phase II objectives diverged from cold (> 1e-6 relative)");
    assert!(winning_identical, "warm winning-ticket choices diverged from cold");
    assert!(speedup >= 1.5, "warm path speedup {speedup:.2}x below the 1.5x budget");
    println!("OK: identical plans, {speedup:.2}x faster warm");
}
