//! Soak test for the `arrow serve` daemon: hundreds of epochs under
//! chaos load, with the acceptance gates from ROADMAP item 3 asserted
//! inline and the results written to `BENCH_serve.json`.
//!
//! Two modes:
//!
//! * `cargo run --release --example serve_soak` — the full soak:
//!   200 epoch ticks, random fiber cut/repair re-plans, 3 chaos bursts.
//! * `cargo run --release --example serve_soak -- --smoke` — the CI
//!   shape: 30 ticks, 1 burst (~30 s wall).
//!
//! What must hold, deterministically under the fixed seed:
//!
//! * warm-hit ratio ≥ 0.9 across the soak (only the cold-start epoch and
//!   plan-structure changes may miss);
//! * every chaos burst blows the 2 s SLO budget (its stall is 3 s), so
//!   bursts == fallbacks == incident dumps, and every dump's critical
//!   path reaches `lp.solve`;
//! * `/metrics` and `/readyz` answer over a real socket throughout;
//!   `/readyz` is 503 before the first plan and 200 after.

use arrow_wan::prelude::*;
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, epochs, bursts) = if smoke { ("smoke", 30, 1) } else { ("full", 200, 3) };

    let budget_seconds = 2.0;
    let stall_seconds = 3.0;
    let incident_dir = PathBuf::from(format!("incidents-soak-{mode}"));
    if incident_dir.exists() {
        std::fs::remove_dir_all(&incident_dir).expect("clear previous incident dir");
    }

    let config = ServeConfig {
        seed: 42,
        epochs,
        budget_seconds,
        scenarios: 4,
        tickets: 8,
        demand_scale: 2.0,
        scrape_every: 5,
        incident_dir: incident_dir.clone(),
        chaos: Some(ChaosConfig { bursts, stall_seconds, ..Default::default() }),
        ..Default::default()
    };
    println!(
        "serve soak ({mode}): {epochs} epochs, {bursts} chaos bursts, \
         {budget_seconds:.1}s budget, {stall_seconds:.1}s stall"
    );

    let report = serve(b4(17), &config).expect("daemon run");

    let p99 = report.p99_epoch_seconds();
    let eps = report.epochs_per_sec();
    let fallback_rate = report.fallbacks as f64 / report.epochs_planned.max(1) as f64;
    let incidents_complete =
        report.incidents.len() as u64 >= report.chaos_bursts && report.incidents_reach_lp_solve;

    println!(
        "planned {} epochs ({} ticks, {} cut/repair, {} bursts) in {:.1}s ({:.1} epochs/s)",
        report.epochs_planned,
        report.ticks,
        report.cut_replans,
        report.chaos_bursts,
        report.wall_seconds,
        eps
    );
    println!(
        "warm-hit ratio {:.4} | p99 epoch {:.3}s | {} fallbacks | {} incidents | {} scrapes ok",
        report.warm_hit_ratio,
        p99,
        report.fallbacks,
        report.incidents.len(),
        report.scrapes_ok
    );
    for inc in &report.incidents {
        println!("  incident: {}", inc.dir.display());
    }

    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"epochs\": {},\n  \"ticks\": {},\n  \
         \"cut_replans\": {},\n  \"chaos_bursts\": {},\n  \"epochs_per_sec\": {:.4},\n  \
         \"p99_epoch_seconds\": {:.6},\n  \"warm_hit_ratio\": {:.6},\n  \
         \"fallback_count\": {},\n  \"fallback_rate\": {:.6},\n  \"plan_errors\": {},\n  \
         \"incidents\": {},\n  \"incidents_complete\": {},\n  \
         \"winning_digest\": \"{:016x}\",\n  \"scrapes_ok\": {},\n  \
         \"readyz_before\": {},\n  \"readyz_after\": {}\n}}\n",
        report.epochs_planned,
        report.ticks,
        report.cut_replans,
        report.chaos_bursts,
        eps,
        p99,
        report.warm_hit_ratio,
        report.fallbacks,
        fallback_rate,
        report.plan_errors,
        report.incidents.len(),
        incidents_complete,
        report.winning_digest,
        report.scrapes_ok,
        report.readyz_before,
        report.readyz_after,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    // The acceptance gates. All deterministic under the fixed seed: the
    // stall is 1.5x the budget (every burst must miss) while a healthy
    // warm epoch runs ~10x under it (nothing else may miss).
    assert!(
        report.warm_hit_ratio >= 0.9,
        "warm-hit ratio {:.4} below the 0.9 floor",
        report.warm_hit_ratio
    );
    assert_eq!(report.chaos_bursts, bursts, "feed dropped a scheduled chaos burst");
    assert_eq!(
        report.fallbacks, report.chaos_bursts,
        "every chaos burst must miss the deadline and fall back to the previous plan"
    );
    assert_eq!(
        report.incidents.len() as u64,
        report.chaos_bursts + report.plan_errors,
        "every deadline miss must produce an incident dump"
    );
    assert!(
        report.incidents_reach_lp_solve,
        "an incident dump's critical path failed to reach lp.solve"
    );
    assert_eq!(report.plan_errors, 0, "soak must plan every epoch");
    assert_eq!(report.readyz_before, 503, "/readyz must be 503 before the first plan");
    assert_eq!(report.readyz_after, 200, "/readyz must be 200 once a plan is installed");
    assert!(
        report.scrapes_ok >= report.epochs_planned / 5 / 2,
        "live /metrics scrapes failed mid-soak ({} ok)",
        report.scrapes_ok
    );
    for inc in &report.incidents {
        assert!(
            inc.dir.join("trace.jsonl").exists()
                && inc.dir.join("critical_path.txt").exists()
                && inc.dir.join("metrics.json").exists()
                && inc.dir.join("incident.json").exists(),
            "incident dump {} is missing artifacts",
            inc.dir.display()
        );
    }
    println!("OK: soak held every gate ({mode} mode)");
}
