//! The full ARROW controller pipeline (Fig. 8), end to end.
//!
//! Offline stage: enumerate probabilistic fiber-cut scenarios, solve the
//! RWA relaxation per scenario, and roll LotteryTickets (Algorithm 1).
//! Online stage: for the current traffic matrix, Phase I picks the winning
//! ticket per scenario, Phase II allocates tunnels, and the plan compiles
//! into router splitting ratios plus ROADM wavelength-reconfiguration
//! rules installed ahead of any actual cut.
//!
//! Run: `cargo run --release --example controller_pipeline`

use arrow_wan::prelude::*;

fn main() {
    let wan = ibm(17);
    println!("== {} ==\n", wan.summary());
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 8, ..Default::default() });
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 2, ..Default::default() });

    // ---- Offline stage ---------------------------------------------------
    let config = ControllerConfig {
        lottery: LotteryConfig { num_tickets: 8, delta: 2, ..Default::default() },
        tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
        ..Default::default()
    };
    let delta = config.lottery.delta;
    let controller = ArrowController::new(wan, failures.failure_scenarios().to_vec(), config);
    println!("offline: {} failure scenarios considered", controller.offline().scenarios.len());
    println!("offline: {}", controller.offline().stats.summary());
    for (qi, (scen, tickets)) in controller
        .offline()
        .scenarios
        .iter()
        .zip(&controller.offline().tickets.per_scenario)
        .enumerate()
    {
        println!(
            "  scenario {qi}: cut {:?} (p={:.4}) -> {} failed IP links, {} LotteryTickets",
            scen.cut_fibers.iter().map(|f| f.0).collect::<Vec<_>>(),
            scen.probability,
            scen.failed_links.len(),
            tickets.len()
        );
    }

    // Theorem 3.1: how many tickets buy 95% optimality for a 2-link cut
    // with fractional seeds 2.4 and 5.7?
    let k = kappa(
        delta,
        &[
            LinkRounding { lambda: 2.4, direction: RoundDirection::Up },
            LinkRounding { lambda: 5.7, direction: RoundDirection::Down },
        ],
    );
    println!(
        "\nTheorem 3.1: κ = {:.4}; ρ with 8 tickets = {:.3}; tickets for ρ ≥ 0.95: {:?}",
        k,
        optimality_probability(k, 8),
        tickets_for_target(k, 0.95)
    );

    // ---- Online stage (one epoch per traffic matrix) ----------------------
    for (epoch, tm) in tms.iter().enumerate() {
        let plan = controller.plan(&tm.scaled(2.0)).expect("offline state is complete");
        let alloc = &plan.outcome.output.alloc;
        println!(
            "\nepoch {epoch}: admitted {:.0} Gbps ({:.1}% of demand), \
             Phase I {:.2}s + Phase II {:.2}s",
            alloc.total_admitted(),
            100.0 * alloc.throughput(&plan.instance),
            plan.outcome.phase1_seconds,
            plan.outcome.phase2_seconds,
        );
        println!("  winning tickets: {:?}", plan.outcome.winning);
        println!("  ROADM reconfiguration rules installed: {}", plan.reconfig_rules.len());
        for rule in plan.reconfig_rules.iter().take(3) {
            let waves: usize = rule.routes.iter().map(|(_, s)| s.len()).sum();
            println!(
                "    scenario {}: lightpath {} -> {} wavelength(s) over {} surrogate route(s)",
                rule.scenario,
                rule.lightpath.0,
                waves,
                rule.routes.len()
            );
        }
        // Show one flow's splitting ratios.
        let f0 = &plan.splitting_ratios[0];
        let ratios: Vec<String> = f0.iter().map(|(t, w)| format!("t{}:{:.2}", t.0, w)).collect();
        println!("  flow 0 splitting ratios: {}", ratios.join(" "));
    }
}
