//! Thread sweep over the parallel offline stage (ticket generation).
//!
//! Runs Algorithm 1 on the same scenario set at 1, 2, 4, … worker threads
//! and prints the `OfflineStats` line for each, plus a per-scenario table
//! for the widest run. Because every scenario draws from its own derived
//! RNG stream (`derive_seed`), every row of the sweep produces the exact
//! same `TicketSet` — the digest column proves it — while the wall clock
//! drops with added threads.
//!
//! Run: `cargo run --release --example offline_sweep`
//! (`ARROW_THREADS` caps the widest run.)

use arrow_wan::obs::RingSubscriber;
use arrow_wan::prelude::*;
use std::sync::Arc;

fn main() {
    let wan = ibm(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 12, ..Default::default() });
    let scens = failures.failure_scenarios().to_vec();
    let cfg = LotteryConfig { num_tickets: 40, ..Default::default() };
    println!("== offline-stage thread sweep: {} ==", wan.summary());
    println!(
        "{} scenarios, |Z| = {} tickets requested per scenario\n",
        scens.len(),
        cfg.num_tickets
    );

    // Sweep fixed thread counts regardless of the host's core count: on a
    // multicore machine the wall-clock column drops accordingly; on a
    // single-core host the >1-thread rows still exercise real concurrent
    // scheduling (the stronger determinism check) at ~1.0x.
    let max_threads = arrow_wan::core::par::default_threads();
    let mut sweep: Vec<usize> = vec![1, 2, 4, 8];
    if !sweep.contains(&max_threads) {
        sweep.push(max_threads);
        sweep.sort_unstable();
    }
    println!("host reports {max_threads} available thread(s)\n");

    // Wall clock per run is read back from the obs "offline" span rather
    // than the bespoke Instant bookkeeping inside OfflineStats.
    let ring = Arc::new(RingSubscriber::new(4096));
    arrow_wan::obs::trace::install(ring.clone());

    let mut serial_wall = None;
    let mut digests = Vec::new();
    let mut last_stats: Option<OfflineStats> = None;
    for &threads in &sweep {
        ring.clear();
        let (set, stats) = generate_tickets_with_threads(&wan, &scens, &cfg, threads);
        let offline_spans = ring.finished_spans("offline");
        assert_eq!(offline_spans.len(), 1, "one offline span per generation run");
        let wall = offline_spans[0].duration_seconds().expect("span end carries a duration");
        let speedup_vs_serial = match serial_wall {
            None => {
                serial_wall = Some(wall);
                1.0
            }
            Some(base) => base / wall.max(1e-12),
        };
        println!(
            "threads {:>2}: {}  | obs wall {:.2}s | vs 1-thread wall: {:.2}x | digest {:016x}",
            threads,
            stats.summary(),
            wall,
            speedup_vs_serial,
            set.digest()
        );
        digests.push(set.digest());
        last_stats = Some(stats);
    }
    arrow_wan::obs::trace::uninstall();

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "determinism violated: TicketSet digest changed with thread count"
    );
    println!("\nall {} runs produced the identical TicketSet (digest match)", digests.len());

    if let Some(stats) = last_stats {
        println!("\nper-scenario breakdown (widest run):");
        println!("  scen |   rwa s |  total s | rounds | infeas | dup | kept | naive-fallback");
        for s in &stats.per_scenario {
            println!(
                "  {:>4} | {:>7.3} | {:>8.3} | {:>6} | {:>6} | {:>3} | {:>4} | {}",
                s.scenario,
                s.rwa_seconds,
                s.seconds,
                s.rounds,
                s.infeasible,
                s.duplicates,
                s.kept,
                if s.naive_fallback { "yes" } else { "no" }
            );
        }
    }
}
