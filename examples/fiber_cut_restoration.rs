//! Testbed restoration trial: noise loading vs legacy amplifiers.
//!
//! Recreates the §5 experiment (Figs. 10–12): cut fiber C–D on the
//! four-site, 34-amplifier, 2,160 km testbed — taking down 2.8 Tbps across
//! three IP links — and restore it twice: once the legacy way (every
//! amplifier on the surrogate paths re-converges with observe–analyze–act
//! loops) and once with ARROW's ASE noise loading (amplifiers never see a
//! power change).
//!
//! Run: `cargo run --release --example fiber_cut_restoration`

use arrow_wan::prelude::*;

fn main() {
    let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
    let cut = tb.fibers[3]; // fiber C–D
    println!("== §5 testbed: 4 ROADMs, 34 amplifiers, 2,160 km fiber ==\n");
    println!("Provisioned IP links: A↔B 0.4 Tbps | A↔C 1.2 Tbps | B↔D 1.2 Tbps | C↔D 0.4 Tbps");
    println!("Cutting fiber C–D (14 wavelengths, 2.8 Tbps)...\n");

    let params = RoadmParams::default();
    for (label, noise) in
        [("ARROW (noise loading)", true), ("legacy (amplifier reconvergence)", false)]
    {
        let r = restoration_trial(&tb, cut, noise, &params);
        println!("--- {label} ---");
        println!("restoration timeline (s, restored Gbps):");
        for p in &r.timeline {
            println!("  t={:8.1}s  {:6.0} Gbps", p.time_s, p.restored_gbps);
        }
        println!(
            "restored {:.0} of {:.0} Gbps in {:.1} s\n",
            r.restored_gbps, r.lost_gbps, r.total_latency_s
        );
    }

    let arrow = restoration_trial(&tb, cut, true, &params);
    let legacy = restoration_trial(&tb, cut, false, &params);
    println!(
        "Speedup from noise loading: {:.0}x (paper: 127x — 8 s vs 1,021 s)",
        legacy.total_latency_s / arrow.total_latency_s
    );

    // The Fig. 20 staircase for one long amplifier cascade.
    println!("\n== Fig. 20: amplifier convergence staircase (24 sites) ==");
    let chain = AmplifierChain { sites: 24, params: AmplifierParams::default() };
    for (t, p) in chain.power_staircase(0.0).iter().step_by(4) {
        println!("  t={:6.0}s  normalized power {:.2}", t, p);
    }
    println!(
        "  total: {:.0} s (~{:.0} min; the paper observed 14 min)",
        chain.total_convergence_seconds(),
        chain.total_convergence_seconds() / 60.0
    );
}
