//! Integration tests for the `arrow serve` daemon loop.
//!
//! `serve` drives process-global observability state (the installed
//! tracer, the SLO window, the exporter readiness flag), so every test
//! here serializes on one mutex rather than racing over the globals.

use arrow_wan::daemon::{serve, ChaosConfig, ServeConfig};
use arrow_wan::prelude::b4;
use std::path::PathBuf;
use std::sync::Mutex;

static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arrow-serve-test-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

/// A small, cut-free run: ticks only plus whatever chaos injects.
fn base_config(tag: &str) -> ServeConfig {
    ServeConfig {
        seed: 7,
        epochs: 4,
        scenarios: 3,
        tickets: 4,
        mean_cut_interval_s: 0.0,
        scrape_every: 0,
        incident_dir: scratch_dir(tag),
        ..Default::default()
    }
}

#[test]
fn forced_slow_epoch_falls_back_to_previous_plan() {
    let _guard = SERVE_LOCK.lock().expect("serve lock");
    let fallbacks_before = arrow_wan::obs::metrics::snapshot().counter("daemon.fallback");

    // One burst whose stall (2.5 s) blows a 1 s budget; healthy warm
    // epochs run well under it, so exactly one epoch may miss.
    let config = ServeConfig {
        budget_seconds: 1.0,
        chaos: Some(ChaosConfig {
            bursts: 1,
            stall_seconds: 2.5,
            first_burst_epoch: 2,
            ..Default::default()
        }),
        ..base_config("fallback")
    };
    let report = serve(b4(17), &config).expect("daemon run");

    assert_eq!(report.chaos_bursts, 1, "the scheduled burst must be delivered");
    assert_eq!(report.fallbacks, 1, "the stalled epoch must fall back");
    assert_eq!(report.plan_errors, 0);
    let fallbacks_after = arrow_wan::obs::metrics::snapshot().counter("daemon.fallback");
    assert_eq!(fallbacks_after - fallbacks_before, 1, "daemon.fallback must count the miss");

    // The installed plan did not advance on the missed epoch: the last
    // history entry repeats the previous one.
    let h = &report.installed_history;
    assert!(h.len() >= 2);
    assert_eq!(
        h[h.len() - 1],
        h[h.len() - 2],
        "deadline miss must keep the previous epoch's plan installed"
    );
    assert!(h[h.len() - 1].is_some(), "a plan must have been installed before the miss");

    // And the miss left a complete flight-recorder incident behind.
    assert_eq!(report.incidents.len(), 1);
    let inc = &report.incidents[0];
    assert!(
        inc.critical_path_contains("lp.solve"),
        "incident critical path must reach lp.solve, got {:?}",
        inc.critical_path.iter().map(|h| h.name.as_str()).collect::<Vec<_>>()
    );
    assert!(inc.dir.join("trace.jsonl").exists());
    assert!(inc.dir.join("incident.json").exists());
    std::fs::remove_dir_all(&config.incident_dir).ok();
}

#[test]
fn same_seed_chaos_soaks_are_byte_identical() {
    let _guard = SERVE_LOCK.lock().expect("serve lock");

    // Zero-stall bursts: the chaos *schedule* is exercised without any
    // wall-clock dependence, so the whole run is a pure function of the
    // seed — event sequence and computed plans alike.
    let config = ServeConfig {
        chaos: Some(ChaosConfig { bursts: 2, stall_seconds: 0.0, ..Default::default() }),
        ..base_config("determinism")
    };
    let a = serve(b4(17), &config).expect("first run");
    let b = serve(b4(17), &config).expect("second run");

    assert_eq!(a.event_log, b.event_log, "same seed must replay the same event sequence");
    assert_eq!(
        a.winning_digest, b.winning_digest,
        "same seed must compute the same winning tickets every epoch"
    );
    assert_eq!(a.chaos_bursts, 2);
    assert_eq!(a.fallbacks, 0, "zero-stall bursts must not miss the deadline");

    let other = ServeConfig { seed: 8, ..config.clone() };
    let c = serve(b4(17), &other).expect("different-seed run");
    assert_ne!(a.event_log, c.event_log, "a different seed must change the event sequence");
}
