//! End-to-end integration tests spanning all crates: topology → tickets →
//! two-phase TE → playback, on each of the paper's topologies.

use arrow_wan::prelude::*;

/// Builds a TE instance for a WAN with a bounded scenario set.
fn make_instance(wan: &Wan, max_scenarios: usize, tunnels: usize) -> TeInstance {
    let tms = gravity_matrices(wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let failures = generate_failures(wan, &FailureConfig { max_scenarios, ..Default::default() });
    build_instance(
        wan,
        &tms[0],
        failures.failure_scenarios(),
        &TunnelConfig { tunnels_per_flow: tunnels, ..Default::default() },
    )
}

#[test]
fn full_pipeline_on_b4() {
    let wan = b4(17);
    let raw = make_instance(&wan, 8, 4);
    // §6 demand scaling: start from a state where 100% of demand fits.
    // Operate well below the saturation scale: the over-provisioned regime the
    // paper's scale-1.0 baseline represents.
    let inst = raw.scaled(0.1 * normalize_demand_scale(&raw));
    let tickets = generate_tickets(
        &wan,
        &inst.scenarios,
        &LotteryConfig { num_tickets: 8, ..Default::default() },
    );
    let out = Arrow::new(tickets).solve(&inst);
    assert!(out.alloc.total_admitted() > 0.0);
    let avail = availability(&inst, &out, &PlaybackConfig::default());
    assert!(avail > 0.95, "ARROW availability {avail} on B4 at the normalized scale");
    // The restoration plan's capacities must be realizable per ticket
    // feasibility (generation filters them).
    let plan = out.restoration.unwrap();
    assert_eq!(plan.len(), inst.scenarios.len());
}

#[test]
fn full_pipeline_on_ibm() {
    let wan = ibm(17);
    let raw = make_instance(&wan, 6, 4);
    let inst = raw.scaled(0.1 * normalize_demand_scale(&raw));
    let tickets = generate_tickets(
        &wan,
        &inst.scenarios,
        &LotteryConfig { num_tickets: 6, ..Default::default() },
    );
    let arrow = Arrow::new(tickets).solve(&inst);
    let ffc = Ffc::k1().solve(&inst);
    let cfg = PlaybackConfig::default();
    let a_arrow = availability(&inst, &arrow, &cfg);
    let a_ffc = availability(&inst, &ffc, &cfg);
    // ARROW admits at least as much as FFC and availability stays high at
    // the normalized scale for both.
    assert!(arrow.alloc.total_admitted() >= ffc.alloc.total_admitted() * 0.99);
    assert!(a_arrow > 0.9 && a_ffc > 0.9, "arrow {a_arrow}, ffc {a_ffc}");
}

#[test]
fn scheme_dominance_ordering_under_load() {
    // At a demand scale beyond saturation, the throughput ordering must be
    // MaxFlow ≥ ARROW(full tickets) ≥ ARROW(no tickets) and
    // FFC-1 ≥ FFC-2 (protection levels only remove capacity).
    let wan = b4(17);
    let inst = make_instance(&wan, 6, 4).scaled(5.0);
    let mf = MaxFlow::default().solve(&inst).alloc.throughput(&inst);
    let full = TicketSet::full(
        inst.scenarios
            .iter()
            .map(|s| {
                vec![RestorationTicket {
                    restored: s
                        .failed_links
                        .iter()
                        .map(|&l| (l, inst.wan.link(l).capacity_gbps))
                        .collect(),
                }]
            })
            .collect(),
    );
    let t_full = Arrow::new(full).solve(&inst).alloc.throughput(&inst);
    let t_none =
        Arrow::new(TicketSet::none(inst.scenarios.len())).solve(&inst).alloc.throughput(&inst);
    let t_ffc1 = Ffc::k1().solve(&inst).alloc.throughput(&inst);
    let t_ffc2 = Ffc::k2().solve(&inst).alloc.throughput(&inst);
    assert!(mf + 1e-4 >= t_full, "MaxFlow {mf} vs full-restoration ARROW {t_full}");
    assert!(t_full + 1e-4 >= t_none, "ARROW full {t_full} vs none {t_none}");
    assert!(t_ffc1 + 1e-4 >= t_ffc2, "FFC-1 {t_ffc1} vs FFC-2 {t_ffc2}");
}

#[test]
fn controller_pipeline_on_ibm() {
    let wan = ibm(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let controller = ArrowController::new(
        wan,
        failures.failure_scenarios().to_vec(),
        ControllerConfig {
            lottery: LotteryConfig { num_tickets: 5, ..Default::default() },
            tunnels: TunnelConfig { tunnels_per_flow: 3, ..Default::default() },
            ..Default::default()
        },
    );
    let plan = controller.plan(&tms[0]).expect("complete offline state");
    assert_eq!(plan.outcome.winning.len(), 4);
    // Reconfig rules must not oversubscribe spectrum: every (fiber, slot)
    // appears at most once per scenario.
    for qi in 0..controller.offline().scenarios.len() {
        let mut used = std::collections::HashSet::new();
        for rule in plan.reconfig_rules.iter().filter(|r| r.scenario == qi) {
            for (path, slots) in &rule.routes {
                for f in &path.fibers {
                    for &w in slots {
                        assert!(used.insert((f.0, w)), "slot reuse in scenario {qi}");
                    }
                }
            }
        }
    }
}

#[test]
fn restoration_latency_and_te_compose() {
    // The latency simulator and the TE pipeline describe the same event:
    // ARROW's plan is installed proactively, then a cut triggers the
    // 8-second optical failover while routers keep their splitting ratios.
    let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
    let arrow_trial = restoration_trial(&tb, tb.fibers[3], true, &RoadmParams::default());
    let legacy_trial = restoration_trial(&tb, tb.fibers[3], false, &RoadmParams::default());
    assert!(arrow_trial.total_latency_s < 15.0);
    assert!(legacy_trial.total_latency_s / arrow_trial.total_latency_s > 30.0);
}

#[test]
fn facebook_like_pipeline_smoke() {
    // The big topology is exercised end-to-end at reduced scenario count.
    let wan = facebook_like(17);
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let failures = generate_failures(
        &wan,
        &FailureConfig { cutoff: 2e-4, max_scenarios: 3, ..Default::default() },
    );
    let inst = build_instance(
        &wan,
        &tms[0],
        failures.failure_scenarios(),
        &TunnelConfig { tunnels_per_flow: 3, ..Default::default() },
    );
    let tickets = generate_tickets(
        &wan,
        &inst.scenarios,
        &LotteryConfig { num_tickets: 4, ..Default::default() },
    );
    let out = Arrow::new(tickets).solve(&inst);
    assert!(out.alloc.total_admitted() > 0.0);
    let avail = availability(&inst, &out, &PlaybackConfig::default());
    assert!(avail > 0.5, "availability {avail}");
}
