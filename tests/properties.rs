//! Cross-crate property-based tests (proptest) on the system's invariants.

use arrow_wan::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Simplex and PDHG agree on random feasible transportation-style LPs,
    /// and both return feasible points.
    #[test]
    fn lp_backends_agree(
        caps in proptest::collection::vec(1.0f64..50.0, 3..6),
        demands in proptest::collection::vec(0.5f64..30.0, 2..5),
    ) {
        use arrow_wan::lp::{model::{LinExpr, Model, Objective, Sense}, SolverConfig};
        let mut m = Model::new();
        // Flow variables: one per (demand, capacity) pair.
        let mut vars = vec![];
        for (i, _) in demands.iter().enumerate() {
            for (j, _) in caps.iter().enumerate() {
                vars.push((i, j, m.add_nonneg(format!("x{i}_{j}"))));
            }
        }
        for (j, &c) in caps.iter().enumerate() {
            let users: Vec<_> = vars.iter().filter(|&&(_, jj, _)| jj == j).map(|&(_, _, v)| v).collect();
            m.add_con(LinExpr::sum_vars(users), Sense::Le, c, format!("cap{j}"));
        }
        let mut obj = LinExpr::new();
        for (i, &d) in demands.iter().enumerate() {
            let users: Vec<_> = vars.iter().filter(|&&(ii, _, _)| ii == i).map(|&(_, _, v)| v).collect();
            m.add_con(LinExpr::sum_vars(users.clone()), Sense::Le, d, format!("dem{i}"));
            for v in users {
                obj.add_term(v, 1.0);
            }
        }
        m.set_objective(obj, Objective::Maximize);
        let exact = arrow_wan::lp::solve(&m, &SolverConfig::exact());
        let fo = arrow_wan::lp::solve(&m, &SolverConfig::first_order(1e-7));
        prop_assert!(exact.status.is_optimal());
        prop_assert!(fo.status.is_optimal());
        let scale = 1.0 + exact.objective.abs();
        prop_assert!((exact.objective - fo.objective).abs() / scale < 1e-3,
            "simplex {} vs pdhg {}", exact.objective, fo.objective);
        prop_assert!(exact.violation(&m) < 1e-6);
        prop_assert!(fo.violation(&m) < 1e-3);
    }

    /// LotteryTickets never restore more than was lost, regardless of
    /// stride, ticket count, or seed.
    #[test]
    fn tickets_bounded_by_lost_capacity(
        seed in 0u64..50,
        delta in 1usize..5,
        n_tickets in 1usize..12,
    ) {
        let wan = b4(17);
        let failures = generate_failures(&wan, &FailureConfig { max_scenarios: 3, ..Default::default() });
        let scens = failures.failure_scenarios();
        let set = generate_tickets(&wan, scens, &LotteryConfig {
            num_tickets: n_tickets,
            delta,
            seed,
            ..Default::default()
        });
        for (scen, tickets) in scens.iter().zip(&set.per_scenario) {
            prop_assert!(!tickets.is_empty());
            for t in tickets {
                for &(link, gbps) in &t.restored {
                    prop_assert!(scen.failed_links.contains(&link));
                    prop_assert!(gbps >= 0.0);
                    prop_assert!(gbps <= wan.link(link).capacity_gbps + 1e-6);
                }
            }
        }
    }

    /// Theorem 3.1's ρ is a probability, monotone in |Z|, and consistent
    /// with κ at |Z| = 1.
    #[test]
    fn theorem31_probability_laws(kappa_val in 0.0f64..1.0, z in 1usize..200) {
        let rho = optimality_probability(kappa_val, z);
        prop_assert!((0.0..=1.0).contains(&rho));
        prop_assert!(rho + 1e-12 >= optimality_probability(kappa_val, z.saturating_sub(1).max(1)) - 1e-12);
        prop_assert!((optimality_probability(kappa_val, 1) - kappa_val).abs() < 1e-12);
    }

    /// Playback satisfaction is within [0, 1] and restoration essentially
    /// only helps. "Essentially": with *frozen* splitting ratios, a
    /// near-zero restoration can hurt marginally — reviving a tunnel whose
    /// restored link has almost no capacity makes the flow offer traffic
    /// there (at its installed ratio) that then drowns at the bottleneck.
    /// ARROW avoids this in practice because Phase II caps restorable-
    /// tunnel allocations at the winning ticket's capacities; for an
    /// arbitrary (allocation, ticket) pairing we only assert the regression
    /// stays within the traffic share such a mismatched tunnel can carry.
    #[test]
    fn playback_monotone_in_restoration(frac in 0.0f64..1.0, scale in 0.5f64..4.0) {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
        let inst = build_instance(
            &wan,
            &tms[0].scaled(scale),
            failures.failure_scenarios(),
            &TunnelConfig { tunnels_per_flow: 3, ..Default::default() },
        );
        let out = MaxFlow::default().solve(&inst);
        let cfg = PlaybackConfig::default();
        for q in &inst.scenarios {
            let ticket = RestorationTicket {
                restored: q
                    .failed_links
                    .iter()
                    .map(|&l| (l, frac * inst.wan.link(l).capacity_gbps))
                    .collect(),
            };
            let with = play_scenario(&inst, &out.alloc, Some(q), Some(&ticket), &cfg);
            let without = play_scenario(&inst, &out.alloc, Some(q), None, &cfg);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&with.satisfaction));
            prop_assert!(with.satisfaction >= without.satisfaction - 0.02,
                "restoration hurt beyond the frozen-ratio mismatch bound: {} -> {}",
                without.satisfaction, with.satisfaction);
        }
    }

    /// Spectrum first-fit (greedy RWA) never double-books a slot, for any
    /// single cut on any seed's B4 variant.
    #[test]
    fn greedy_rwa_never_double_books(seed in 0u64..30, fiber in 0usize..19) {
        let wan = b4(seed);
        let cut = [FiberId(fiber)];
        if wan.optical.affected_lightpaths(&cut).is_empty() {
            return Ok(());
        }
        let masks = wan.optical.restoration_spectrum(&cut);
        let assigns = greedy_assign(&wan.optical, &cut, &RwaConfig::default(), None);
        let mut used: std::collections::HashSet<(usize, usize)> = Default::default();
        for a in &assigns {
            for (path, slots) in &a.routes {
                for f in &path.fibers {
                    for &w in slots {
                        prop_assert!(masks[f.0].is_free(w), "assigned an occupied slot");
                        prop_assert!(used.insert((f.0, w)), "double-booked slot");
                    }
                }
            }
        }
    }

    /// Amplifier cascade latency scales linearly with chain length, and
    /// noise loading is invariant to it.
    #[test]
    fn latency_scales_with_amplifiers(mult in 1usize..5) {
        let mut tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        for chain in tb.amps.iter_mut() {
            chain.sites *= mult;
        }
        let arrow = restoration_trial(&tb, tb.fibers[3], true, &RoadmParams::default());
        let legacy = restoration_trial(&tb, tb.fibers[3], false, &RoadmParams::default());
        prop_assert!(arrow.total_latency_s < 15.0, "noise loading must be amp-count invariant");
        prop_assert!(legacy.total_latency_s > 300.0 * mult as f64);
    }
}
